use crate::detect::detect_t1;
use crate::dff::insert_dffs;
use crate::flow::{run_flow, run_flow_on_network, FlowConfig};
use crate::phase::{
    arrival_cost, assign_phases, solve_arrivals, solve_arrivals_cp, PhaseEngine, PhaseError,
};
use proptest::prelude::*;
use sfq_netlist::{Aig, CellKind, CutConfig, GateKind, Library, Network};

fn fa_network() -> Network {
    let mut net = Network::new("fa");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let axb = net.add_gate(GateKind::Xor2, &[a, b]);
    let s = net.add_gate(GateKind::Xor2, &[axb, c]);
    let ab = net.add_gate(GateKind::And2, &[a, b]);
    let t = net.add_gate(GateKind::And2, &[axb, c]);
    let co = net.add_gate(GateKind::Or2, &[ab, t]);
    net.add_output("s", s);
    net.add_output("co", co);
    net
}

fn ripple_adder_aig(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("add{bits}"));
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let mut carry = aig.const_false();
    let mut sums = Vec::new();
    for i in 0..bits {
        let (s, c) = aig.full_adder(a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    sums.push(carry);
    aig.output_word("s", &sums);
    aig
}

// ------------------------------------------------------------- detect ----

#[test]
fn detect_finds_full_adder() {
    let net = fa_network();
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    assert_eq!(det.found, 1, "one T1 group (S + C on shared leaves)");
    assert_eq!(det.used, 1);
    let g = &det.groups[0];
    assert_eq!(g.input_mask, 0, "no input inverters needed");
    assert_eq!(g.roots.len(), 2);
    assert_eq!(det.network.num_t1(), 1);
    // XOR3 + MAJ3 on ports S and C: mask 0b00011.
    assert_eq!(g.used_ports, 0b00011);
    // Conventional FA (5 gates, 53 JJ) → T1 at 29 JJ: gain = 24.
    assert_eq!(g.gain, 53 - 29);
    det.network.validate().unwrap();
}

#[test]
fn detect_preserves_function() {
    let net = fa_network();
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    let pats = [
        0x0123_4567_89AB_CDEFu64,
        0xFEDC_BA98_7654_3210,
        0xA5A5_5A5A_C3C3_3C3C,
    ];
    assert_eq!(net.simulate(&pats), det.network.simulate(&pats));
}

#[test]
fn detect_skips_non_t1_logic() {
    // A 3-input AND tree offers no XOR3/MAJ3/OR3 pair (AND3 alone matches
    // with all-negated inputs but a singleton group is not allowed).
    let mut net = Network::new("and3");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let ab = net.add_gate(GateKind::And2, &[a, b]);
    let abc = net.add_gate(GateKind::And2, &[ab, c]);
    net.add_output("f", abc);
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    assert_eq!(det.found, 0);
    assert_eq!(det.used, 0);
    assert_eq!(det.network.num_t1(), 0);
}

#[test]
fn detect_handles_negated_variants() {
    // ¬MAJ3 and XNOR3 over the same leaves: realizable via C*+INV with one
    // input polarity trick... build sum = xnor3, carry = nor-style ¬maj.
    let mut net = Network::new("neg");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let axb = net.add_gate(GateKind::Xnor2, &[a, b]);
    let s = net.add_gate(GateKind::Xnor2, &[axb, c]); // xnor(xnor(a,b),c) = xor3
    let ab = net.add_gate(GateKind::And2, &[a, b]);
    let axb2 = net.add_gate(GateKind::Xor2, &[a, b]);
    let t = net.add_gate(GateKind::And2, &[axb2, c]);
    let co = net.add_gate(GateKind::Or2, &[ab, t]);
    let nco = net.add_gate(GateKind::Inv, &[co]); // ¬maj3
    net.add_output("s", s);
    net.add_output("nco", nco);
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    assert!(det.used >= 1, "xor3/¬maj3 pair should map to S and C*+INV");
    let pats = [
        0x1111_2222_3333_4444u64,
        0x5555_6666_7777_8888,
        0x9999_AAAA_BBBB_CCCC,
    ];
    assert_eq!(net.simulate(&pats), det.network.simulate(&pats));
}

#[test]
fn detect_on_array_multiplier_finds_fa_groups() {
    // Regression: array multipliers are carry-save FA grids, yet an earlier
    // dual-polarity mapper destroyed every shared 3-leaf boundary and
    // detection found zero groups (the paper finds 824 on its multiplier).
    let mut aig = Aig::new("mult");
    let a = aig.input_word("a", 4);
    let b = aig.input_word("b", 4);
    let mut cols: Vec<Vec<sfq_netlist::AigLit>> = vec![Vec::new(); 8];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            cols[i + j].push(pp);
        }
    }
    let mut carries: Vec<sfq_netlist::AigLit> = Vec::new();
    let mut product = Vec::new();
    for col in cols.iter_mut() {
        col.append(&mut carries);
        while col.len() > 1 {
            if col.len() >= 3 {
                let (x, y, z) = (col.remove(0), col.remove(0), col.remove(0));
                let (s, c) = aig.full_adder(x, y, z);
                col.push(s);
                carries.push(c);
            } else {
                let (x, y) = (col.remove(0), col.remove(0));
                let (s, c) = aig.half_adder(x, y);
                col.push(s);
                carries.push(c);
            }
        }
        product.push(col.first().copied().unwrap_or(sfq_netlist::AigLit::FALSE));
    }
    aig.output_word("p", &product);

    let net = sfq_netlist::map_aig(&aig, &Library::default());
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    assert!(
        det.used >= 4,
        "expected ≥4 committed T1 cells, got {}",
        det.used
    );
    let pats: Vec<u64> = (0..8)
        .map(|i| 0xDEAD_BEEF_CAFE_F00Du64.rotate_left(i * 5))
        .collect();
    assert_eq!(net.simulate(&pats), det.network.simulate(&pats));
}

#[test]
fn detect_on_ripple_adder_replaces_every_fa() {
    let aig = ripple_adder_aig(8);
    let net = sfq_netlist::map_aig(&aig, &Library::default());
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    // 8-bit RCA: bit 0 is a half adder; bits 1..7 are full adders.
    assert!(det.used >= 6, "expected ≥6 T1 cells, got {}", det.used);
    let pats: Vec<u64> = (0..16)
        .map(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i * 3))
        .collect();
    assert_eq!(net.simulate(&pats), det.network.simulate(&pats));
}

// ------------------------------------------------------------ arrivals ----

#[test]
fn arrivals_prefer_free_slots() {
    // Fanins at 3, 4, 5 with T1 at 6, n = 4: window [3,5] — everyone arrives
    // at their own stage, zero extra DFFs.
    assert_eq!(solve_arrivals([3, 4, 5], 6, 4), Some([3, 4, 5]));
}

#[test]
fn arrivals_separate_equal_stages() {
    // All fanins at 3, T1 at 6: slots {3,4,5} in some distinct assignment.
    let arr = solve_arrivals([3, 3, 3], 6, 4).unwrap();
    let mut sorted = arr;
    sorted.sort_unstable();
    assert_eq!(sorted, [3, 4, 5]);
}

#[test]
fn arrivals_respect_window() {
    // Fanin at stage 1, T1 at 10, n = 4: window [7,9]; arrival ≥ 7.
    let arr = solve_arrivals([1, 8, 9], 10, 4).unwrap();
    assert!(arr[0] >= 7);
    assert_eq!(arr[1], 8);
    assert_eq!(arr[2], 9);
}

#[test]
fn arrivals_infeasible_when_window_too_small() {
    // n = 3 → window of 2 slots for 3 fanins.
    assert_eq!(solve_arrivals([1, 1, 1], 5, 3), None);
}

#[test]
fn fast_arrival_solver_is_bit_identical_to_enumerator() {
    // The closed-form solver must return *exactly* what the reference
    // enumerator returns — same feasibility, same cost, same tie-broken
    // arrival vector — over the full small-parameter domain, including
    // unsorted fanin stages (tie-breaking is index-sensitive), degenerate
    // windows (σ_j ≤ n − 1), and phase counts too small for three slots.
    // The shared memo cache must agree with both.
    let cache = crate::phase::ArrivalCache::new();
    let mut checked = 0u64;
    for n in 1u32..=8 {
        for s0 in 0..=9u32 {
            for s1 in 0..=9 {
                for s2 in 0..=9 {
                    let fs = [s0, s1, s2];
                    let bound = {
                        let mut t = fs;
                        t.sort_unstable();
                        (t[0] + 3).max(t[1] + 2).max(t[2] + 1)
                    };
                    for sigma in 0..=bound + 4 {
                        let fast = solve_arrivals(fs, sigma, n);
                        let slow = crate::phase::solve_arrivals_enum(fs, sigma, n);
                        assert_eq!(fast, slow, "divergence at fs={fs:?} σ={sigma} n={n}");
                        assert_eq!(
                            cache.solve(fs, sigma, n),
                            fast,
                            "cache divergence at fs={fs:?} σ={sigma} n={n}"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 100_000, "sweep covered {checked} cases");
    // The memo key is window-relative, so even this sweep — which is
    // adversarial, visiting every distinct geometry once — stays well below
    // one key per ~20 queries; real flows re-query far fewer geometries.
    assert!(
        cache.len() as u64 * 20 < checked,
        "memo kept {} keys for {checked} queries",
        cache.len()
    );
}

#[test]
fn arrival_cache_is_transparent() {
    let cache = crate::phase::ArrivalCache::new();
    assert!(cache.is_empty());
    // Same relative geometry at shifted absolute stages: one key, exact
    // per-query answers.
    for base in 0..50u32 {
        let fs = [base + 3, base + 3, base + 4];
        let sigma = base + 7;
        assert_eq!(cache.solve(fs, sigma, 4), solve_arrivals(fs, sigma, 4));
    }
    assert_eq!(cache.len(), 1, "shifted queries share one relative key");
}

#[test]
fn cp_arrival_model_matches_enumerator_everywhere() {
    // Sweep the entire meaningful input space: fanin stages in 0..=8,
    // σ_T1 up to the eq.-3 bound + slack, n ∈ 4..=8. The CP model (the
    // paper's CP-SAT formulation) must agree with the enumerator on
    // feasibility and on optimal DFF cost.
    for n in 4u32..=8 {
        for s0 in 0..=8u32 {
            for s1 in s0..=8 {
                for s2 in s1..=8 {
                    let fs = [s0, s1, s2];
                    let bound = (s0 + 3).max(s1 + 2).max(s2 + 1);
                    for sigma in s2 + 1..=bound + 3 {
                        let brute = solve_arrivals(fs, sigma, n);
                        let cp = solve_arrivals_cp(fs, sigma, n);
                        match (brute, cp) {
                            (None, None) => {}
                            (Some(b), Some(c)) => {
                                assert_eq!(
                                    arrival_cost(fs, b, n),
                                    arrival_cost(fs, c, n),
                                    "cost mismatch at fs={fs:?} σ={sigma} n={n}: {b:?} vs {c:?}"
                                );
                                // CP solution must satisfy the same rules.
                                let mut sorted = c;
                                sorted.sort_unstable();
                                assert!(sorted[0] != sorted[1] && sorted[1] != sorted[2]);
                                for k in 0..3 {
                                    assert!(c[k] >= fs[k] && c[k] < sigma);
                                    assert!(sigma - c[k] < n);
                                }
                            }
                            (b, c) => panic!(
                                "feasibility mismatch at fs={fs:?} σ={sigma} n={n}: brute={b:?} cp={c:?}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- phase ----

#[test]
fn phase_rejects_t1_under_4_phases() {
    let net = fa_network();
    let det = detect_t1(&net, &Library::default(), &CutConfig::default());
    let err = assign_phases(&det.network, 2, PhaseEngine::Auto).unwrap_err();
    assert!(matches!(err, PhaseError::TooFewPhasesForT1 { .. }));
}

#[test]
fn phase_exact_zero_dffs_when_fits_in_period() {
    // FA network depth 3 ≤ n=4: everything fits in one period, no DFFs.
    let net = fa_network();
    let asg = assign_phases(&net, 4, PhaseEngine::Exact).unwrap();
    let timed = insert_dffs(&net, &asg, 4).unwrap();
    timed.audit().unwrap();
    assert_eq!(timed.num_dffs(), 0);
    assert_eq!(timed.depth_cycles(), 1);
}

#[test]
fn phase_single_phase_counts_classic_balancing() {
    // FA: levels a,b,c=0; axb=1; s=2, ab=1, t=2, co=3. σ_out=3.
    // 1φ chains: a→{axb@1, ab@1}: 0 DFFs... every edge Δ=1 except:
    //   c feeds s@2 and t@2 → chain to stage 1: 1 DFF
    //   ab@1 feeds co@3 → 1 DFF; axb@1→s@2,t@2 ok; s@2→out@3: 1 DFF...
    // exact engine finds the minimum; verify audit + optimality vs heuristic.
    let net = fa_network();
    let exact = assign_phases(&net, 1, PhaseEngine::Exact).unwrap();
    let te = insert_dffs(&net, &exact, 1).unwrap();
    te.audit().unwrap();
    let heur = assign_phases(&net, 1, PhaseEngine::Heuristic).unwrap();
    let th = insert_dffs(&net, &heur, 1).unwrap();
    th.audit().unwrap();
    assert_eq!(
        te.num_dffs(),
        th.num_dffs(),
        "tiny case: both engines optimal"
    );
    assert!(te.num_dffs() >= 2);
}

#[test]
fn phase_heuristic_matches_exact_on_small_nets() {
    for (bits, n) in [(2usize, 1u8), (2, 4), (3, 2)] {
        let aig = ripple_adder_aig(bits);
        let net = sfq_netlist::map_aig(&aig, &Library::default());
        let exact = assign_phases(&net, n, PhaseEngine::Exact).unwrap();
        let te = insert_dffs(&net, &exact, n).unwrap();
        te.audit().unwrap();
        let heur = assign_phases(&net, n, PhaseEngine::Heuristic).unwrap();
        let th = insert_dffs(&net, &heur, n).unwrap();
        th.audit().unwrap();
        // The heuristic may not be optimal, but must be close on tiny nets
        // and never below the exact optimum.
        assert!(
            th.num_dffs() >= te.num_dffs(),
            "heuristic ({}) beat 'exact' ({}) — exact model must be wrong",
            th.num_dffs(),
            te.num_dffs()
        );
        assert!(
            th.num_dffs() <= te.num_dffs() + 2,
            "heuristic too far off: {} vs {}",
            th.num_dffs(),
            te.num_dffs()
        );
    }
}

#[test]
fn phase_more_phases_never_more_dffs() {
    let aig = ripple_adder_aig(6);
    let net = sfq_netlist::map_aig(&aig, &Library::default());
    let mut prev = usize::MAX;
    for n in [1u8, 2, 4, 8] {
        let asg = assign_phases(&net, n, PhaseEngine::Heuristic).unwrap();
        let timed = insert_dffs(&net, &asg, n).unwrap();
        timed.audit().unwrap();
        let dffs = timed.num_dffs();
        assert!(dffs <= prev, "n={n}: {dffs} DFFs > previous {prev}");
        prev = dffs;
    }
}

// ----------------------------------------------------------- cost model ----

/// The phase engines optimize `CostModel::total_cost`; DFF insertion must
/// then materialize exactly that many DFFs — otherwise the objective the
/// ILP minimizes is not the quantity the paper reports.
#[test]
fn cost_model_predicts_inserted_dff_count() {
    use crate::phase::{build_view, CostModel};
    for (net, n) in [
        (fa_network(), 1u8),
        (fa_network(), 4),
        (
            sfq_netlist::map_aig(&ripple_adder_aig(4), &Library::default()),
            4,
        ),
        (
            detect_t1(
                &sfq_netlist::map_aig(&ripple_adder_aig(4), &Library::default()),
                &Library::default(),
                &CutConfig::default(),
            )
            .network,
            4,
        ),
    ] {
        let view = build_view(&net).expect("valid network");
        let asg = assign_phases(&net, n, PhaseEngine::Heuristic).expect("feasible");
        let cache = crate::phase::ArrivalCache::new();
        let model = CostModel::new(&net, &view, n as u32, &cache);
        let predicted = model
            .total_cost(&asg.stages, asg.output_stage)
            .expect("assignment is feasible");
        let timed = insert_dffs(&net, &asg, n).expect("insertable");
        timed.audit().expect("clean audit");
        assert_eq!(
            predicted,
            timed.num_dffs(),
            "cost model vs materialized DFFs ({}-phase {})",
            n,
            net.name()
        );
    }
}

// ---------------------------------------------------------------- audit ----
//
// `TimedNetwork::audit` is the flow's last line of defense; until now it was
// only ever exercised on the success path at the end of `run_flow`. These
// tests corrupt valid timed networks (wrong stages, missing DFF taps, epoch
// skew, misaligned outputs, structural damage) and assert that each
// `TimingError` variant actually fires.

/// A valid 4-phase timed FA network to corrupt.
fn valid_timed() -> crate::timed::TimedNetwork {
    let res = run_flow_on_network(&fa_network(), &FlowConfig::multiphase(4)).unwrap();
    res.timed.audit().expect("flow output audits clean");
    res.timed
}

/// A valid hand-built T1 timed network: inputs a, b, c at stage 0, per-input
/// DFF chains delivering pairwise-distinct arrivals 1, 2, 3 to a T1 cell at
/// stage 4 under a 4-phase clock, its S port driving the output.
fn valid_t1_timed() -> crate::timed::TimedNetwork {
    use sfq_netlist::{Signal, T1Port};
    let mut net = Network::new("t1net");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let da = net.add_dff(a); // arrival 1
    let db1 = net.add_dff(b);
    let db2 = net.add_dff(db1); // arrival 2
    let dc1 = net.add_dff(c);
    let dc2 = net.add_dff(dc1);
    let dc3 = net.add_dff(dc2); // arrival 3
    let t1 = net.add_t1(1 << T1Port::S.index(), &[da, db2, dc3]);
    net.add_output("s", Signal::t1(t1, T1Port::S));
    let timed = crate::timed::TimedNetwork {
        network: net,
        stages: vec![0, 0, 0, 1, 1, 2, 1, 2, 3, 4],
        num_phases: 4,
        output_stage: 4,
    };
    timed.audit().expect("hand-built T1 network audits clean");
    timed
}

#[test]
fn audit_detects_input_off_stage_zero() {
    use crate::timed::TimingError;
    let mut t = valid_timed();
    let input = t.network.inputs()[0];
    t.stages[input.0 as usize] = 1;
    assert!(matches!(
        t.audit(),
        Err(TimingError::InputNotAtZero { cell }) if cell == input
    ));
}

#[test]
fn audit_detects_non_causal_edge() {
    use crate::timed::TimingError;
    let mut t = valid_timed();
    // First clocked cell fires at the same stage as its (input) fanins.
    let gate = t
        .network
        .cell_ids()
        .find(|&id| t.network.kind(id).is_clocked())
        .expect("flow output has clocked cells");
    t.stages[gate.0 as usize] = 0;
    assert!(matches!(
        t.audit(),
        Err(TimingError::NonCausalEdge { to, to_stage: 0, .. }) if to == gate
    ));
}

#[test]
fn audit_detects_missing_dff_tap() {
    use crate::timed::TimingError;
    // Pushing a cell more than n stages past its fanin models a missing
    // path-balancing DFF: the pulse would outlive its n-stage lifetime.
    let mut t = valid_timed();
    let n = u32::from(t.num_phases);
    let gate = t
        .network
        .cell_ids()
        .find(|&id| t.network.kind(id).is_clocked())
        .unwrap();
    t.stages[gate.0 as usize] = n + 2; // fanins are inputs at stage 0
    let err = t.audit().unwrap_err();
    assert!(
        matches!(err, TimingError::LifetimeExceeded { to, span, .. }
            if to == gate && span == n + 2),
        "expected LifetimeExceeded, got {err:?}"
    );
}

#[test]
fn audit_detects_t1_arrival_collision() {
    use crate::timed::TimingError;
    // Epoch-skewing the a-chain DFF from stage 1 to 2 collides with the
    // b-chain arrival (2): distinct-slot rule (paper eq. 5) violated while
    // every edge stays causal and within its lifetime.
    let mut t = valid_t1_timed();
    t.stages[3] = 2; // da: arrival 1 → 2
    let err = t.audit().unwrap_err();
    assert!(
        matches!(err, TimingError::T1ArrivalCollision { stage: 2, .. }),
        "expected T1ArrivalCollision at stage 2, got {err:?}"
    );
}

#[test]
fn audit_detects_t1_arrival_outside_window() {
    use crate::timed::TimingError;
    // Moving the T1 cell from stage 4 to 7 leaves arrival 1 more than
    // n − 1 = 3 stages in the past — outside the input window.
    let mut t = valid_t1_timed();
    t.stages[9] = 7;
    let err = t.audit().unwrap_err();
    assert!(
        matches!(
            err,
            TimingError::T1ArrivalOutsideWindow {
                fanin_stage: 1,
                t1_stage: 7,
                ..
            }
        ),
        "expected T1ArrivalOutsideWindow, got {err:?}"
    );
}

#[test]
fn audit_detects_misaligned_output() {
    use crate::timed::TimingError;
    let mut t = valid_timed();
    let expected = t.output_stage;
    t.output_stage += 1;
    let err = t.audit().unwrap_err();
    assert!(
        matches!(err, TimingError::OutputMisaligned { driver_stage, output_stage, .. }
            if driver_stage == expected && output_stage == expected + 1),
        "expected OutputMisaligned, got {err:?}"
    );
}

#[test]
fn audit_detects_structural_damage() {
    use crate::timed::TimingError;
    use sfq_netlist::{CellId, Signal};
    let mut t = valid_timed();
    // An output reading a dangling cell id fails network validation, which
    // the audit surfaces as TimingError::Structural.
    t.network
        .add_output("dangling", Signal::from_cell(CellId(u32::MAX)));
    assert!(matches!(t.audit(), Err(TimingError::Structural(_))));
}

// ----------------------------------------------------------------- flow ----

#[test]
fn flow_single_phase_fa() {
    let net = fa_network();
    let res = run_flow_on_network(&net, &FlowConfig::single_phase()).unwrap();
    res.timed.audit().unwrap();
    assert_eq!(res.report.phases, 1);
    assert_eq!(res.report.t1_used, 0);
    assert!(res.report.num_dffs >= 2);
}

#[test]
fn flow_t1_beats_4phase_on_adder() {
    let aig = ripple_adder_aig(8);
    let lib = Library::default();
    let four = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
    let t1 = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
    let one = run_flow(&aig, &FlowConfig::single_phase()).unwrap();
    // The paper's headline trends on the adder family:
    assert!(
        t1.report.area < four.report.area,
        "T1 must reduce area on adders"
    );
    assert!(
        four.report.num_dffs < one.report.num_dffs,
        "4φ crushes 1φ balancing"
    );
    assert!(t1.report.t1_used >= 6);
    // The complement-port optimization lets the T1 carry chain advance one
    // stage per bit (half the mapped chain), so T1 depth on ripple adders
    // is *at most* the 4φ depth — and often better. The paper's Table I
    // shows ≥ on its rows; on a pure ripple structure ≤ is the truth.
    assert!(
        t1.report.depth_cycles <= four.report.depth_cycles,
        "T1 ripple chain is tighter"
    );
    let _ = lib;
}

#[test]
fn flow_reports_are_consistent() {
    let aig = ripple_adder_aig(4);
    let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
    assert_eq!(res.report.num_dffs, res.timed.num_dffs());
    assert_eq!(res.report.area, res.timed.area(&Library::default()));
    assert_eq!(res.report.depth_cycles, res.timed.depth_cycles());
    assert_eq!(res.report.num_gates, res.timed.network.num_gates());
}

#[test]
fn flow_t1_multioutput_sharing() {
    // Two FAs sharing inputs: S, C, plus an OR3 of the same leaves → 3 ports.
    let mut net = Network::new("triple");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let axb = net.add_gate(GateKind::Xor2, &[a, b]);
    let s = net.add_gate(GateKind::Xor2, &[axb, c]);
    let ab = net.add_gate(GateKind::And2, &[a, b]);
    let t = net.add_gate(GateKind::And2, &[axb, c]);
    let co = net.add_gate(GateKind::Or2, &[ab, t]);
    let aob = net.add_gate(GateKind::Or2, &[a, b]);
    let or3 = net.add_gate(GateKind::Or2, &[aob, c]);
    net.add_output("s", s);
    net.add_output("co", co);
    net.add_output("or", or3);
    let res = run_flow_on_network(&net, &FlowConfig::t1(4)).unwrap();
    assert_eq!(res.report.t1_used, 1);
    // All three outputs come from one T1 cell.
    let t1_cells: Vec<_> = res
        .timed
        .network
        .cell_ids()
        .filter(|&id| matches!(res.timed.network.kind(id), CellKind::T1 { .. }))
        .collect();
    assert_eq!(t1_cells.len(), 1);
}

#[test]
fn flow_depth_cycles_formula() {
    // 1φ: depth equals mapped logic depth; 4φ: ⌈depth/4⌉ when ASAP-like.
    let aig = ripple_adder_aig(8);
    let one = run_flow(&aig, &FlowConfig::single_phase()).unwrap();
    let four = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
    assert!(one.report.depth_cycles >= 3 * four.report.depth_cycles);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end: random mapped networks → every flow audits clean and
    /// preserves the function (the flow itself re-checks equivalence; this
    /// re-verifies independently with different patterns).
    #[test]
    fn prop_flows_preserve_function(ops in proptest::collection::vec((0u8..4, 0usize..16, 0usize..16), 4..40),
                                    n_phases in 1u8..6) {
        let mut aig = Aig::new("rand");
        let mut pool: Vec<sfq_netlist::AigLit> = (0..5).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib) in ops {
            let x = pool[ia % pool.len()];
            let y = pool[ib % pool.len()];
            let r = match op {
                0 => aig.and(x, y),
                1 => aig.or(x, y),
                2 => aig.xor(x, y),
                _ => { let t = aig.and(x, y); !t }
            };
            pool.push(r);
        }
        let mut n_out = 0;
        for (i, &lit) in pool.iter().rev().take(3).enumerate() {
            if !lit.is_constant() {
                aig.output(format!("f{i}"), lit);
                n_out += 1;
            }
        }
        prop_assume!(n_out > 0);
        let config = FlowConfig { phases: n_phases.max(4), use_t1: true, ..FlowConfig::single_phase() };
        let res = run_flow(&aig, &config).unwrap();
        res.timed.audit().unwrap();
        let mapped = sfq_netlist::map_aig(&aig, &Library::default());
        let pats: Vec<u64> = (0..5).map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i * 7)).collect();
        prop_assert_eq!(mapped.simulate(&pats), res.timed.network.simulate(&pats));
    }

    /// The incremental heuristic's objective must still be the true
    /// materialization cost after the hot-path rewrite: for random T1
    /// subjects, `CostModel::total_cost` of the returned assignment equals
    /// the DFF count `insert_dffs` actually builds.
    #[test]
    fn prop_heuristic_objective_equals_materialized_dffs(
        ops in proptest::collection::vec((0u8..4, 0usize..16, 0usize..16), 4..40),
        n_phases in 4u8..8,
    ) {
        use crate::phase::{build_view, ArrivalCache, CostModel};
        let mut aig = Aig::new("rand");
        let mut pool: Vec<sfq_netlist::AigLit> = (0..5).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib) in ops {
            let x = pool[ia % pool.len()];
            let y = pool[ib % pool.len()];
            let r = match op {
                0 => aig.and(x, y),
                1 => aig.or(x, y),
                2 => aig.xor(x, y),
                _ => { let t = aig.and(x, y); !t }
            };
            pool.push(r);
        }
        let mut n_out = 0;
        for (i, &lit) in pool.iter().rev().take(3).enumerate() {
            if !lit.is_constant() {
                aig.output(format!("f{i}"), lit);
                n_out += 1;
            }
        }
        prop_assume!(n_out > 0);
        let lib = Library::default();
        let (mapped, _) = sfq_netlist::map_aig(&aig, &lib).cleaned();
        let subject = detect_t1(&mapped, &lib, &CutConfig::default()).network;
        let asg = assign_phases(&subject, n_phases, PhaseEngine::Heuristic).unwrap();
        let view = build_view(&subject).unwrap();
        let cache = ArrivalCache::new();
        let model = CostModel::new(&subject, &view, u32::from(n_phases), &cache);
        let predicted = model.total_cost(&asg.stages, asg.output_stage).unwrap();
        let timed = insert_dffs(&subject, &asg, n_phases).unwrap();
        timed.audit().unwrap();
        prop_assert_eq!(predicted, timed.num_dffs(),
            "objective vs built DFFs at n={}", n_phases);
    }

    /// Arrival solver: solutions are always distinct, in-window, and causal.
    #[test]
    fn prop_arrivals_sound(s0 in 0u32..12, s1 in 0u32..12, s2 in 0u32..12, extra in 1u32..6, n in 4u32..8) {
        let fs = [s0, s1, s2];
        let mut sorted = fs;
        sorted.sort_unstable();
        let sigma_j = (sorted[0] + 3).max(sorted[1] + 2).max(sorted[2] + 1) + extra - 1;
        if let Some(arr) = solve_arrivals(fs, sigma_j, n) {
            for k in 0..3 {
                prop_assert!(arr[k] >= fs[k]);
                prop_assert!(arr[k] < sigma_j);
                prop_assert!(sigma_j - arr[k] < n);
            }
            prop_assert!(arr[0] != arr[1] && arr[1] != arr[2] && arr[0] != arr[2]);
        } else {
            // Infeasibility only when the window genuinely can't host 3 slots.
            prop_assert!(false, "must be feasible at or above the eq.-3 bound");
        }
    }
}

// ------------------------------------------------------- supervision ----

mod supervision {
    use super::ripple_adder_aig;
    use crate::flow::{run_flow, FlowConfig, FlowError};
    use crate::supervise::{supervise, FlowOutcome, Limits};
    use std::time::Duration;

    #[test]
    fn ok_flows_pass_through_with_their_result() {
        let aig = ripple_adder_aig(4);
        let outcome = supervise(&Limits::NONE, || run_flow(&aig, &FlowConfig::t1(4)));
        assert!(outcome.is_ok());
        let res = outcome.result().expect("finished flow");
        assert!(res.report.t1_used >= 1);
        assert_eq!(outcome.failure(), None);
    }

    #[test]
    fn typed_flow_errors_become_failed() {
        let aig = ripple_adder_aig(2);
        let mut config = FlowConfig::t1(4);
        config.phases = 0; // infeasible: phase assignment must reject it
        let outcome = supervise(&Limits::NONE, || run_flow(&aig, &config));
        assert!(
            matches!(outcome, FlowOutcome::Failed(FlowError::Phase(_))),
            "{outcome:?}"
        );
        assert!(outcome.failure().expect("reason").contains("phase"));
    }

    #[test]
    fn panics_are_contained_with_their_message() {
        let outcome = supervise(&Limits::NONE, || panic!("exploding flow"));
        match &outcome {
            FlowOutcome::Panicked { message } => assert_eq!(message, "exploding flow"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(
            outcome.failure().expect("reason"),
            "panicked: exploding flow"
        );
    }

    #[test]
    fn zero_deadline_times_out_at_the_first_stage_gate() {
        let aig = ripple_adder_aig(4);
        let limits = Limits {
            deadline: Some(Duration::ZERO),
            max_nodes: None,
        };
        let outcome = supervise(&limits, || run_flow(&aig, &FlowConfig::t1(4)));
        assert!(matches!(outcome, FlowOutcome::TimedOut), "{outcome:?}");
        assert_eq!(outcome.failure().expect("reason"), "deadline exceeded");
    }

    #[test]
    fn tiny_node_ceiling_aborts_over_budget() {
        let aig = ripple_adder_aig(8);
        let limits = Limits {
            deadline: None,
            max_nodes: Some(1),
        };
        let outcome = supervise(&limits, || run_flow(&aig, &FlowConfig::t1(4)));
        assert!(matches!(outcome, FlowOutcome::OverBudget), "{outcome:?}");
        assert_eq!(outcome.failure().expect("reason"), "node budget exceeded");
    }

    #[test]
    fn budget_guard_never_leaks_across_supervised_runs() {
        let aig = ripple_adder_aig(4);
        let limits = Limits {
            deadline: None,
            max_nodes: Some(1),
        };
        let aborted = supervise(&limits, || run_flow(&aig, &FlowConfig::t1(4)));
        assert!(matches!(aborted, FlowOutcome::OverBudget));
        // The exhausted budget must not infect the next (unlimited) run.
        let clean = supervise(&Limits::NONE, || run_flow(&aig, &FlowConfig::t1(4)));
        assert!(clean.is_ok(), "{clean:?}");
        assert!(
            !sfq_netlist::budget::active(),
            "no budget outlives its supervised flow"
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_stage_faults_map_to_failed_and_panicked() {
        use sfq_netlist::faultpt::{arm_limited, disarm, FaultAction};
        let mut aig = ripple_adder_aig(4);
        aig.set_name("supervise-fault-test");
        let config = FlowConfig::t1(4);

        arm_limited(
            "flow.detect",
            Some("supervise-fault-test"),
            FaultAction::Panic,
            1,
        );
        let outcome = supervise(&Limits::NONE, || run_flow(&aig, &config));
        disarm("flow.detect", Some("supervise-fault-test"));
        assert_eq!(
            outcome.failure().expect("reason"),
            "panicked: injected panic at flow.detect"
        );

        arm_limited(
            "flow.phase",
            Some("supervise-fault-test"),
            FaultAction::Err,
            1,
        );
        let outcome = supervise(&Limits::NONE, || run_flow(&aig, &config));
        disarm("flow.phase", Some("supervise-fault-test"));
        assert!(
            matches!(outcome, FlowOutcome::Failed(FlowError::Fault(_))),
            "{outcome:?}"
        );
        assert_eq!(
            outcome.failure().expect("reason"),
            "injected fault at flow.phase"
        );

        // A delay fault under a deadline: the sliced sleep must notice the
        // deadline promptly (well under the armed delay).
        arm_limited(
            "flow.dff",
            Some("supervise-fault-test"),
            FaultAction::Delay(60_000),
            1,
        );
        let limits = Limits {
            deadline: Some(Duration::from_millis(50)),
            max_nodes: None,
        };
        let start = std::time::Instant::now();
        let outcome = supervise(&limits, || run_flow(&aig, &config));
        disarm("flow.dff", Some("supervise-fault-test"));
        assert!(matches!(outcome, FlowOutcome::TimedOut), "{outcome:?}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "deadline interrupts the sleep long before the armed 60 s"
        );
    }
}
