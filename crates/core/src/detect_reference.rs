//! Reference implementation of T1-FF detection and replacement.
//!
//! This is the original, straightforward `detect_t1` — `HashMap` group
//! collection, per-cone `HashSet`s, hash-probed rewrite — kept verbatim as
//! the **executable specification** for the optimized detector in
//! [`crate::detect`]. The differential harness
//! (`tests/differential_mapping.rs`) asserts that
//! [`detect_t1_reference`] and [`crate::detect_t1`] produce bit-identical
//! detections (same found/used counts, same committed groups, same rewritten
//! network) on every benchmark generator and on random AIGs; any divergence
//! is a bug in the fast path.
//!
//! Do not optimize this module: its value is being obviously correct.

use crate::detect::{T1Detection, T1Group};
use sfq_netlist::{enumerate_cuts, CellId, CellKind, CutConfig, Library, Network, Signal, T1Port};
use sfq_tt::T1MatchDb;
use std::collections::{HashMap, HashSet};

/// Reference detector: same contract and bit-identical output as
/// [`crate::detect_t1`], slower on large networks.
pub fn detect_t1_reference(net: &Network, lib: &Library, cut_config: &CutConfig) -> T1Detection {
    detect_t1_with_threshold_reference(net, lib, cut_config, 0)
}

/// [`detect_t1_reference`] with an explicit gain cutoff, mirroring
/// [`crate::detect_t1_with_threshold`].
pub fn detect_t1_with_threshold_reference(
    net: &Network,
    lib: &Library,
    cut_config: &CutConfig,
    threshold: i64,
) -> T1Detection {
    let db = T1MatchDb::new();
    let cuts = enumerate_cuts(net, cut_config);
    let refs = sfq_netlist::mffc::reference_counts(net);

    // ---- collect matches grouped by (leaves, mask) -----------------------
    #[derive(Debug)]
    struct Entry {
        root: CellId,
        port: T1Port,
    }
    let mut groups: HashMap<([Signal; 3], u8), Vec<Entry>> = HashMap::new();
    for id in net.cell_ids() {
        if !matches!(net.kind(id), CellKind::Gate(_)) {
            continue;
        }
        let mut seen_leafsets: HashSet<[Signal; 3]> = HashSet::new();
        for cut in cuts.of(id) {
            if cut.leaves.len() != 3 {
                continue;
            }
            let leaves: [Signal; 3] = [cut.leaves[0], cut.leaves[1], cut.leaves[2]];
            if !seen_leafsets.insert(leaves) {
                continue; // same leaf set reached through another cut shape
            }
            for (mask, m) in db.all_masks(&cut.tt) {
                // S has no complement pin (see sfq-tt docs).
                let Some(port) = T1Port::for_match(m.base, m.output_negated) else {
                    continue;
                };
                groups
                    .entry((leaves, mask))
                    .or_default()
                    .push(Entry { root: id, port });
            }
        }
    }

    // ---- evaluate candidates ---------------------------------------------
    struct Candidate {
        group: T1Group,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for ((leaves, mask), entries) in groups {
        // Assign ports: first root wins a port; later roots with the same
        // port share it only if they are *distinct* cells (duplicate logic).
        let mut port_owner: HashMap<u8, Vec<CellId>> = HashMap::new();
        for e in &entries {
            let owners = port_owner.entry(e.port.index()).or_default();
            if !owners.contains(&e.root) {
                owners.push(e.root);
            }
        }
        let mut roots: Vec<(CellId, T1Port)> = Vec::new();
        let mut used_ports = 0u8;
        let mut port_list: Vec<(u8, Vec<CellId>)> = port_owner.into_iter().collect();
        port_list.sort_by_key(|&(p, _)| p);
        for (pidx, owners) in port_list {
            used_ports |= 1 << pidx;
            for r in owners {
                roots.push((r, T1Port::from_index(pidx)));
            }
        }
        // A root matched on several ports (impossible: one function per
        // node per leaf set) — and the paper requires ≥ 2 cuts per group.
        let distinct_roots: HashSet<CellId> = roots.iter().map(|&(r, _)| r).collect();
        if distinct_roots.len() < 2 {
            continue;
        }

        // Joint MFFC of all roots, with leaves pinned alive.
        let leaf_cells: HashSet<CellId> = leaves.iter().map(|l| l.cell).collect();
        let (cone, cone_area) = group_mffc(net, &distinct_roots, &leaf_cells, &refs, lib);

        let t1_cost = lib.t1_area(used_ports) as i64 + (mask.count_ones() as i64) * lib.inv as i64;
        let gain = cone_area as i64 - t1_cost;
        if gain <= threshold {
            continue;
        }
        let dead: Vec<CellId> = cone
            .into_iter()
            .filter(|c| !distinct_roots.contains(c))
            .collect();
        candidates.push(Candidate {
            group: T1Group {
                leaves,
                input_mask: mask,
                roots,
                used_ports,
                gain,
                dead,
            },
        });
    }
    let found = candidates.len();

    // ---- greedy non-overlapping commit ------------------------------------
    candidates.sort_by(|a, b| {
        b.group
            .gain
            .cmp(&a.group.gain)
            .then_with(|| a.group.leaves.cmp(&b.group.leaves))
            .then_with(|| a.group.input_mask.cmp(&b.group.input_mask))
    });
    let mut claimed_dead: HashSet<CellId> = HashSet::new();
    let mut used_roots: HashSet<CellId> = HashSet::new();
    let mut needed_alive: HashSet<CellId> = HashSet::new();
    let mut committed: Vec<T1Group> = Vec::new();
    for cand in candidates {
        let g = &cand.group;
        let roots: HashSet<CellId> = g.roots.iter().map(|&(r, _)| r).collect();
        let conflict = roots
            .iter()
            .any(|r| used_roots.contains(r) || claimed_dead.contains(r))
            || g.dead.iter().any(|c| {
                claimed_dead.contains(c) || used_roots.contains(c) || needed_alive.contains(c)
            })
            || roots.iter().any(|r| needed_alive.contains(r))
            || g.leaves.iter().any(|l| claimed_dead.contains(&l.cell))
            || g.dead.iter().any(|c| g.leaves.iter().any(|l| l.cell == *c));
        if conflict {
            continue;
        }
        claimed_dead.extend(g.dead.iter().copied());
        used_roots.extend(roots.iter().copied());
        for l in &g.leaves {
            needed_alive.insert(l.cell);
        }
        committed.push(cand.group);
    }
    let used = committed.len();

    // ---- rebuild the network ----------------------------------------------
    let network = rebuild(net, &committed, &claimed_dead);
    T1Detection {
        network,
        found,
        used,
        groups: committed,
    }
}

/// Joint MFFC of several roots with pinned leaves: the set of cells that die
/// when all roots are replaced, never crossing leaves, inputs, or non-gate
/// cells. Returns the cone (roots included) and the area of its cells.
fn group_mffc(
    net: &Network,
    roots: &HashSet<CellId>,
    pinned: &HashSet<CellId>,
    refs: &[u32],
    lib: &Library,
) -> (Vec<CellId>, u64) {
    let mut taken: HashMap<CellId, u32> = HashMap::new();
    let mut cone: Vec<CellId> = roots.iter().copied().collect();
    cone.sort();
    let mut stack = cone.clone();
    let mut in_cone: HashSet<CellId> = roots.clone();
    while let Some(id) = stack.pop() {
        for f in net.fanins(id) {
            let d = f.cell;
            if pinned.contains(&d) || roots.contains(&d) || in_cone.contains(&d) {
                continue;
            }
            let t = taken.entry(d).or_insert(0);
            *t += 1;
            if *t == refs[d.0 as usize] && matches!(net.kind(d), CellKind::Gate(_)) {
                cone.push(d);
                in_cone.insert(d);
                stack.push(d);
            }
        }
    }
    let area = cone.iter().map(|&c| lib.cell_area(net.kind(c))).sum();
    (cone, area)
}

/// The complement of `base` in the network under construction: when `base`
/// is a complementable T1 port (`C ↔ C*+INV`, `Q ↔ Q*+INV`), enable and use
/// the twin port — same stage, no extra pipeline level; otherwise a shared
/// clocked inverter cell.
fn negated_signal(
    out: &mut Network,
    base: Signal,
    inv_cache: &mut HashMap<Signal, Signal>,
) -> Signal {
    if out.kind(base.cell).is_t1() {
        if let Some(twin) = T1Port::from_index(base.port).complement() {
            return out.enable_t1_port(base.cell, twin);
        }
    }
    *inv_cache
        .entry(base)
        .or_insert_with(|| out.add_gate(sfq_netlist::GateKind::Inv, &[base]))
}

fn rebuild(net: &Network, groups: &[T1Group], dead: &HashSet<CellId>) -> Network {
    let order = net.topological_order().expect("subject network is acyclic");
    let mut out = Network::new(net.name().to_string());
    // old signal → new signal (roots map to T1 ports).
    let mut remap: HashMap<Signal, Signal> = HashMap::new();
    // first root (in topo order) of each group triggers materialization.
    let mut group_of_root: HashMap<CellId, usize> = HashMap::new();
    for (gi, g) in groups.iter().enumerate() {
        for &(r, _) in &g.roots {
            group_of_root.insert(r, gi);
        }
    }
    let mut materialized: Vec<Option<CellId>> = vec![None; groups.len()];
    // Shared input inverters: (leaf signal) → INV output in the new network.
    let mut inv_cache: HashMap<Signal, Signal> = HashMap::new();

    let mut inputs_done = 0usize;
    for id in order {
        let old_kind = net.kind(id);
        if dead.contains(&id) {
            continue;
        }
        if let Some(&gi) = group_of_root.get(&id) {
            // Materialize the T1 cell once, then map this root to its port.
            if materialized[gi].is_none() {
                let g = &groups[gi];
                let mut fanins: Vec<Signal> = Vec::with_capacity(3);
                for (li, leaf) in g.leaves.iter().enumerate() {
                    let base = *remap.get(leaf).unwrap_or_else(|| {
                        panic!("leaf {leaf:?} must precede root in topological order")
                    });
                    if g.input_mask >> li & 1 == 1 {
                        fanins.push(negated_signal(&mut out, base, &mut inv_cache));
                    } else {
                        fanins.push(base);
                    }
                }
                materialized[gi] = Some(out.add_t1(g.used_ports, &fanins));
            }
            let t1 = materialized[gi].unwrap();
            let g = &groups[gi];
            let port = g
                .roots
                .iter()
                .find(|&&(r, _)| r == id)
                .map(|&(_, p)| p)
                .expect("root registered in its group");
            remap.insert(Signal::from_cell(id), Signal::t1(t1, port));
            continue;
        }
        // Ordinary copy.
        match old_kind {
            CellKind::Input => {
                let k = inputs_done;
                inputs_done += 1;
                let s = out.add_input(net.input_name(k).to_string());
                remap.insert(Signal::from_cell(id), s);
            }
            CellKind::Gate(gk) => {
                let fanins: Vec<Signal> = net.fanins(id).iter().map(|f| remap[f]).collect();
                let s = out.add_gate(gk, &fanins);
                remap.insert(Signal::from_cell(id), s);
            }
            CellKind::T1 { used_ports } => {
                let fanins: Vec<Signal> = net.fanins(id).iter().map(|f| remap[f]).collect();
                let new_id = out.add_t1(used_ports, &fanins);
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        remap.insert(Signal::t1(id, port), Signal::t1(new_id, port));
                    }
                }
            }
            CellKind::Dff => {
                let fanins: Vec<Signal> = net.fanins(id).iter().map(|f| remap[f]).collect();
                let s = out.add_dff(fanins[0]);
                remap.insert(Signal::from_cell(id), s);
            }
        }
    }
    for (k, o) in net.outputs().iter().enumerate() {
        let s = remap[o];
        out.add_output(net.output_name(k).to_string(), s);
    }
    out
}
