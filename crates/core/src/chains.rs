//! Shared DFF-chain planning.
//!
//! Every driven output pin gets at most one linear chain of DFFs; all sinks
//! tap the chain (through implied splitters), which is what makes multiphase
//! path balancing so much cheaper than per-edge insertion. This module
//! contains the chain construction used both by the phase-assignment cost
//! model (counting) and by DFF insertion (materializing), so the objective
//! being optimized and the hardware being built can never drift apart.
//!
//! Chain rules (`n` = phases per period):
//! * the driver pin fires at stage `σ_u`; chain DFFs fire at strictly
//!   increasing stages, each hop spanning at most `n` stages;
//! * a *plain* sink clocked at `σ_v` may tap any chain element with stage in
//!   `[σ_v − n, σ_v − 1]`;
//! * an *exact* sink (a T1 fanin with a chosen arrival stage, or a primary
//!   output aligned to `σ_out`) must tap an element at exactly its stage —
//!   or the driver itself when the stage equals `σ_u`.

/// Requirements a single driver pin must satisfy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainDemand {
    /// Stages of plain (window-tapping) sinks.
    pub plain: Vec<u32>,
    /// Stages of exact-tap sinks (`> σ_u`; equal-to-driver taps are free and
    /// must be filtered out by the caller).
    pub exact: Vec<u32>,
}

impl ChainDemand {
    /// True if no sink needs the chain at all.
    pub fn is_empty(&self) -> bool {
        self.plain.is_empty() && self.exact.is_empty()
    }
}

/// Computes the DFF stages of the minimal shared chain for one driver pin.
///
/// Returns the sorted stages of the inserted DFFs. The caller guarantees
/// `σ_u < v` for every plain sink stage `v` and `σ_u < t` for every exact
/// tap `t` (violations panic in debug builds and produce malformed chains
/// otherwise — upstream constraints make them impossible).
pub fn plan_chain(sigma_u: u32, demand: &ChainDemand, n: u32) -> Vec<u32> {
    debug_assert!(n >= 1);
    let mut taps: Vec<u32> = demand.exact.clone();
    taps.sort_unstable();
    taps.dedup();
    debug_assert!(
        taps.first().is_none_or(|&t| t > sigma_u),
        "exact tap at/before driver"
    );

    // Fill hops longer than n between consecutive chain elements.
    let mut filled: Vec<u32> = Vec::with_capacity(taps.len());
    let mut prev = sigma_u;
    for &t in &taps {
        while t - prev > n {
            prev += n;
            filled.push(prev);
        }
        filled.push(t);
        prev = t;
    }
    let mut chain = filled;

    // Cover plain sinks in stage order; extend the chain tail as needed.
    let mut plain = demand.plain.clone();
    plain.sort_unstable();
    for &v in &plain {
        debug_assert!(v > sigma_u, "plain sink at/before driver");
        if v - sigma_u <= n {
            continue; // driver itself is in the window
        }
        // The chain's gap invariant (≤ n) means a tap lies in [v−n, v−1]
        // whenever the chain reaches v−n; otherwise extend the tail.
        let mut last = chain.last().copied().unwrap_or(sigma_u);
        while last + n < v {
            last += n;
            chain.push(last);
        }
    }
    chain
}

/// Counts the chain DFFs without materializing them.
///
/// Semantically `plan_chain(..).len()`, computed arithmetically: ladder fills
/// between consecutive exact taps are `⌈Δ/n⌉ − 1` hops each, and the plain
/// tail extension depends only on the *largest* plain sink (processing plain
/// sinks in stage order extends the tail by whole `n`-hops, so every
/// intermediate sink's extension is subsumed by the maximum's).
pub fn chain_cost(sigma_u: u32, demand: &ChainDemand, n: u32) -> usize {
    let mut exact: Vec<u32> = demand.exact.clone();
    exact.sort_unstable();
    exact.dedup();
    chain_cost_sorted(sigma_u, &exact, demand.plain.iter().copied().max(), n)
}

/// [`chain_cost`] over pre-sorted, deduplicated exact taps and the maximum
/// plain-sink stage — the allocation-free form the phase-assignment hot loop
/// uses with reusable scratch buffers.
///
/// `exact_sorted` must be strictly increasing with every element `> sigma_u`;
/// `max_plain`, when present, is the largest plain-sink stage (`> sigma_u`).
pub fn chain_cost_sorted(
    sigma_u: u32,
    exact_sorted: &[u32],
    max_plain: Option<u32>,
    n: u32,
) -> usize {
    debug_assert!(n >= 1);
    debug_assert!(
        exact_sorted.windows(2).all(|w| w[0] < w[1]),
        "taps must be sorted+deduped"
    );
    let mut count = 0usize;
    let mut last = sigma_u;
    for &t in exact_sorted {
        debug_assert!(t > sigma_u, "exact tap at/before driver");
        // Ladder fills so no hop exceeds n, then the tap itself.
        count += ((t - last - 1) / n) as usize + 1;
        last = t;
    }
    if let Some(v) = max_plain {
        debug_assert!(v > sigma_u, "plain sink at/before driver");
        // A sink within the driver's pulse lifetime taps the driver directly;
        // beyond it, extend the tail ladder (gap invariant keeps a tap in
        // every sink's window).
        if v - sigma_u > n && v > last {
            count += ((v - last - 1) / n) as usize;
        }
    }
    count
}

/// Finds the tap (a chain stage, or the driver when `None`) a plain sink at
/// stage `v` should read.
///
/// # Panics
/// Panics if the chain does not cover the sink — [`plan_chain`] output always
/// does.
pub fn tap_for_plain(sigma_u: u32, chain: &[u32], v: u32, n: u32) -> Option<u32> {
    // Prefer the latest admissible tap (shortest wire, most sharing).
    let lo = v.saturating_sub(n);
    if let Some(&t) = chain.iter().rev().find(|&&t| t < v && t >= lo) {
        return Some(t);
    }
    assert!(
        v - sigma_u <= n,
        "chain does not cover plain sink at stage {v} (driver {sigma_u}, n={n})"
    );
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(plain: &[u32], exact: &[u32]) -> ChainDemand {
        ChainDemand {
            plain: plain.to_vec(),
            exact: exact.to_vec(),
        }
    }

    #[test]
    fn empty_demand_no_chain() {
        assert_eq!(plan_chain(5, &demand(&[], &[]), 4), Vec::<u32>::new());
        assert_eq!(chain_cost(5, &demand(&[], &[]), 4), 0);
    }

    #[test]
    fn plain_within_lifetime_needs_nothing() {
        assert_eq!(
            plan_chain(0, &demand(&[1, 3, 4], &[]), 4),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn plain_beyond_lifetime_builds_ladder() {
        // Driver at 0, sink at 9, n=4: DFFs at 4 and 8.
        assert_eq!(plan_chain(0, &demand(&[9], &[]), 4), vec![4, 8]);
        // Matches the closed form ⌈Δ/n⌉ − 1.
        assert_eq!(
            chain_cost(0, &demand(&[9], &[]), 4),
            (9f64 / 4.0).ceil() as usize - 1
        );
    }

    #[test]
    fn shared_chain_covers_many_sinks() {
        // Sinks at 3, 6, 9, 12 share one ladder: DFFs at 4 and 8.
        let c = plan_chain(0, &demand(&[3, 6, 9, 12], &[]), 4);
        assert_eq!(c, vec![4, 8]);
        assert_eq!(tap_for_plain(0, &c, 3, 4), None); // direct from driver
        assert_eq!(tap_for_plain(0, &c, 6, 4), Some(4));
        assert_eq!(tap_for_plain(0, &c, 9, 4), Some(8));
        assert_eq!(tap_for_plain(0, &c, 12, 4), Some(8));
    }

    #[test]
    fn single_phase_recovers_classic_balancing() {
        // n=1: a sink at stage 7 from a driver at 2 needs 4 DFFs (3,4,5,6).
        assert_eq!(plan_chain(2, &demand(&[7], &[]), 1), vec![3, 4, 5, 6]);
    }

    #[test]
    fn exact_taps_are_inserted_verbatim() {
        let c = plan_chain(0, &demand(&[], &[2, 3]), 4);
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn exact_taps_far_away_get_ladder_fill() {
        // Exact tap at 10, n=4: fills at 4, 8, then 10.
        assert_eq!(plan_chain(0, &demand(&[], &[10]), 4), vec![4, 8, 10]);
    }

    #[test]
    fn exact_taps_also_serve_plain_sinks() {
        // Exact tap at 5 needs a ladder fill at 4 first (a 0→5 hop would
        // exceed the 4-stage pulse lifetime); the tap then covers a plain
        // sink at 7 (window [3,6]) with no further DFFs.
        let c = plan_chain(0, &demand(&[7], &[5]), 4);
        assert_eq!(c, vec![4, 5]);
        assert_eq!(tap_for_plain(0, &c, 7, 4), Some(5));
    }

    #[test]
    fn duplicate_exact_taps_dedupe() {
        assert_eq!(plan_chain(1, &demand(&[], &[3, 3, 3]), 4), vec![3]);
    }

    #[test]
    fn mixed_demand_counts_match_plan() {
        let d = demand(&[2, 9, 14], &[6, 13]);
        let c = plan_chain(0, &d, 4);
        assert_eq!(chain_cost(0, &d, 4), c.len());
        // Gap invariant.
        let mut prev = 0;
        for &t in &c {
            assert!(t - prev <= 4);
            prev = t;
        }
        // Every plain sink covered.
        for v in [2u32, 9, 14] {
            let _ = tap_for_plain(0, &c, v, 4); // must not panic
        }
    }

    /// The `chain_cost`/`plan_chain` seam is the contract between the
    /// phase-assignment descent (which only counts) and DFF insertion
    /// (which materializes): the counted cost of a demand must equal the
    /// length of the plan built for it, the plan must keep the ≤ n gap
    /// invariant, contain every exact tap verbatim, and cover every plain
    /// sink through `tap_for_plain` — including sinks and taps landing
    /// exactly on epoch boundaries (`σ_u + k·n`), where the tap window
    /// `[v − n, v − 1]` closes.
    mod consistency {
        use super::*;
        use proptest::prelude::*;

        fn check(sigma_u: u32, demand: &ChainDemand, n: u32) -> Result<(), TestCaseError> {
            let plan = plan_chain(sigma_u, demand, n);
            let counted = chain_cost(sigma_u, demand, n);
            let expected = if demand.is_empty() { 0 } else { plan.len() };
            prop_assert_eq!(
                counted,
                expected,
                "cost vs plan at σ_u={} n={} demand={:?} plan={:?}",
                sigma_u,
                n,
                demand,
                &plan
            );
            // Gap invariant: strictly increasing, no hop longer than n.
            let mut prev = sigma_u;
            for &t in &plan {
                prop_assert!(t > prev && t - prev <= n, "gap {prev}→{t} at n={n}");
                prev = t;
            }
            // Every exact tap is in the plan verbatim.
            for &t in &demand.exact {
                prop_assert!(
                    plan.binary_search(&t).is_ok(),
                    "exact tap {t} missing from plan {plan:?}"
                );
            }
            // Every plain sink resolves a tap inside its window (or the
            // driver itself within the pulse lifetime); tap_for_plain
            // panics if the chain fails to cover a sink.
            for &v in &demand.plain {
                match tap_for_plain(sigma_u, &plan, v, n) {
                    Some(t) => prop_assert!(t < v && v - t <= n),
                    None => prop_assert!(v - sigma_u <= n),
                }
            }
            Ok(())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(768))]

            /// Random mixed demands over the full small-parameter domain.
            #[test]
            fn prop_chain_cost_equals_plan(
                sigma_u in 0u32..12,
                n in 1u32..9,
                plain_deltas in prop::collection::vec(1u32..30, 0..6),
                exact_deltas in prop::collection::vec(1u32..30, 0..5),
            ) {
                let demand = ChainDemand {
                    plain: plain_deltas.iter().map(|d| sigma_u + d).collect(),
                    exact: exact_deltas.iter().map(|d| sigma_u + d).collect(),
                };
                check(sigma_u, &demand, n)?;
            }

            /// Epoch-boundary bias: every tap and sink sits at `σ_u + k·n`
            /// or one stage either side of it, the `tap_for_plain` window
            /// edges where an off-by-one would hide.
            #[test]
            fn prop_chain_cost_at_epoch_boundaries(
                sigma_u in 0u32..8,
                n in 1u32..9,
                exact_epochs in prop::collection::vec((1u32..5, 0u32..3), 0..4),
                plain_epochs in prop::collection::vec((1u32..5, 0u32..3), 1..5),
            ) {
                // off ∈ 0..3 places the stage at k·n − 1, k·n, or k·n + 1
                // relative to the driver (clamped past the driver).
                let snap =
                    |k: u32, off: u32| (sigma_u + k * n + off).saturating_sub(1).max(sigma_u + 1);
                let demand = ChainDemand {
                    plain: plain_epochs.iter().map(|&(k, o)| snap(k, o)).collect(),
                    exact: exact_epochs.iter().map(|&(k, o)| snap(k, o)).collect(),
                };
                check(sigma_u, &demand, n)?;
            }
        }
    }

    /// The counting-only path must equal `plan_chain(..).len()` on a dense
    /// pseudo-random sweep of demands (the hot loop never materializes a
    /// plan, so any divergence would silently corrupt the heuristic's
    /// objective).
    #[test]
    fn counting_cost_matches_materialized_plan_everywhere() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move |bound: u32| -> u32 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32 % bound
        };
        for _case in 0..20_000 {
            let n = 1 + next(8);
            let sigma_u = next(12);
            let mut d = ChainDemand::default();
            for _ in 0..next(5) {
                d.plain.push(sigma_u + 1 + next(20));
            }
            for _ in 0..next(4) {
                d.exact.push(sigma_u + 1 + next(20));
            }
            assert_eq!(
                chain_cost(sigma_u, &d, n),
                if d.is_empty() {
                    0
                } else {
                    plan_chain(sigma_u, &d, n).len()
                },
                "σ_u={sigma_u} n={n} demand={d:?}"
            );
        }
    }
}
