//! End-to-end synthesis flows and their Table I-style reports.
//!
//! Three configurations reproduce the paper's comparison:
//!
//! * [`FlowConfig::single_phase`] — classic 1φ SFQ with full path balancing;
//! * [`FlowConfig::multiphase`]   — `n`-phase clocking, no T1 cells (the 4φ
//!   baseline);
//! * [`FlowConfig::t1`]           — `n`-phase clocking with T1 detection (the
//!   paper's contribution).
//!
//! Every flow ends with a structural timing audit and a functional
//! equivalence check (bit-parallel simulation against the input network), so
//! a [`FlowResult`] is a verified artifact, not just numbers.

use crate::detect::detect_t1_with_threshold;
use crate::engine::TimingEngine;
use crate::phase::{PhaseEngine, PhaseError};
use crate::timed::{TimedNetwork, TimingError};
use sfq_netlist::{map_aig, Aig, CutConfig, Design, Library, Network};

/// Configuration of one synthesis flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Number of clock phases per period (`n`).
    pub phases: u8,
    /// Whether T1 detection runs.
    pub use_t1: bool,
    /// Phase-assignment engine selection.
    pub engine: PhaseEngine,
    /// JJ area model.
    pub library: Library,
    /// Cut enumeration parameters for T1 detection.
    pub cut_config: CutConfig,
    /// T1 commit cutoff: only groups with `ΔA > gain_threshold` JJs are
    /// considered (the paper uses 0).
    pub gain_threshold: i64,
    /// Number of 64-vector random pattern words for the equivalence check
    /// (0 disables the check).
    pub equivalence_words: usize,
    /// Phase-assignment descent restarts (heuristic paths only). The
    /// default is `sfq_netlist::par::workers()` — idle cores become extra
    /// deterministically perturbed restarts merged by `(cost, index)`, so
    /// the result is never worse than (and independent of the worker count
    /// relative to) `restarts: 1`, which remains reachable via config —
    /// see [`TimingEngine::optimize`]. Restart 0 is the unperturbed plain
    /// descent, so any restart count ≥ 1 dominates the single-descent cost.
    /// On sequential builds `workers()` is 1 and this stays the single
    /// ASAP descent.
    pub restarts: usize,
}

impl FlowConfig {
    /// The paper's 1φ baseline: single-phase clocking, no T1 cells.
    pub fn single_phase() -> Self {
        FlowConfig {
            phases: 1,
            use_t1: false,
            engine: PhaseEngine::Auto,
            library: Library::default(),
            cut_config: CutConfig::default(),
            gain_threshold: 0,
            equivalence_words: 4,
            restarts: sfq_netlist::par::workers(),
        }
    }

    /// The paper's multiphase baseline (e.g. 4φ): no T1 cells.
    pub fn multiphase(phases: u8) -> Self {
        FlowConfig {
            phases,
            ..Self::single_phase()
        }
    }

    /// The paper's T1 flow: multiphase clocking plus T1 detection.
    pub fn t1(phases: u8) -> Self {
        FlowConfig {
            phases,
            use_t1: true,
            ..Self::single_phase()
        }
    }
}

/// Table I-style metrics of a finished flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowReport {
    /// Design name.
    pub name: String,
    /// Number of clock phases.
    pub phases: u8,
    /// Positive-gain T1 candidates ("T1 cells found").
    pub t1_found: usize,
    /// Committed T1 cells ("T1 cells used").
    pub t1_used: usize,
    /// Logic cells after mapping/detection (gates + T1 macro-cells).
    pub num_gates: usize,
    /// Inserted path-balancing DFFs ("#DFF").
    pub num_dffs: usize,
    /// Total area in JJs ("Area").
    pub area: u64,
    /// Logic depth in clock cycles ("Depth").
    pub depth_cycles: u32,
}

/// A finished flow: the timed netlist plus its report.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The audited, retimed netlist.
    pub timed: TimedNetwork,
    /// Table I-style metrics.
    pub report: FlowReport,
}

/// Errors from running a flow.
#[derive(Debug)]
pub enum FlowError {
    /// Phase assignment failed.
    Phase(PhaseError),
    /// The final audit failed (always a bug in the flow, never user error).
    Audit(TimingError),
    /// The retimed network is not functionally equivalent to the input
    /// (always a bug in the flow, never user error).
    NotEquivalent {
        /// Index of the first differing primary output.
        output: usize,
    },
    /// The input network failed validation.
    BadInput(String),
    /// An armed `err`-action fault point fired (`fault-injection` feature
    /// only — see [`sfq_netlist::faultpt`]). Never produced in production
    /// builds.
    Fault(String),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Phase(e) => write!(f, "phase assignment: {e}"),
            FlowError::Audit(e) => write!(f, "timing audit failed: {e}"),
            FlowError::NotEquivalent { output } => {
                write!(f, "flow broke functional equivalence at output {output}")
            }
            FlowError::BadInput(e) => write!(f, "invalid input network: {e}"),
            FlowError::Fault(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<PhaseError> for FlowError {
    fn from(e: PhaseError) -> Self {
        FlowError::Phase(e)
    }
}

/// Stage boundary of a supervised flow: deadline checkpoint plus a named
/// fault point (context = design/network name). Both are no-ops outside
/// supervised/fault-injected runs; the checkpoint is what lets a deadline
/// fire between hot loops rather than only inside them.
fn stage_gate(site: &'static str, name: &str) -> Result<(), FlowError> {
    sfq_netlist::budget::checkpoint();
    if sfq_netlist::faultpt::hit(site, name) {
        return Err(FlowError::Fault(site.to_string()));
    }
    Ok(())
}

/// Runs a flow starting from an AIG (technology mapping included).
///
/// # Errors
/// See [`FlowError`].
pub fn run_flow(aig: &Aig, config: &FlowConfig) -> Result<FlowResult, FlowError> {
    stage_gate("flow.map", aig.name())?;
    let mapped = map_aig(aig, &config.library);
    run_flow_on_network(&mapped, config)
}

/// Runs a flow on an externally ingested [`Design`] (AIGER or BLIF file
/// loaded through `sfq_netlist::design`) — the entry point of the batched
/// external-benchmark drivers.
///
/// # Errors
/// See [`FlowError`].
pub fn run_flow_on_design(design: &Design, config: &FlowConfig) -> Result<FlowResult, FlowError> {
    run_flow(&design.aig, config)
}

/// Runs a flow starting from an already-mapped network.
///
/// # Errors
/// See [`FlowError`].
pub fn run_flow_on_network(net: &Network, config: &FlowConfig) -> Result<FlowResult, FlowError> {
    net.validate()
        .map_err(|e| FlowError::BadInput(e.to_string()))?;
    let (clean, _) = net.cleaned();

    // Stage 1: T1 detection. A T1 cell needs three pairwise-distinct
    // arrival slots inside its input window of n−1 stages, so with n < 4
    // candidates are still *found* (reported) but none can commit.
    stage_gate("flow.detect", clean.name())?;
    let (subject, t1_found, t1_used) = if config.use_t1 {
        let det = detect_t1_with_threshold(
            &clean,
            &config.library,
            &config.cut_config,
            config.gain_threshold,
        );
        if config.phases >= 4 {
            (det.network, det.found, det.used)
        } else {
            (clean.clone(), det.found, 0)
        }
    } else {
        (clean.clone(), 0, 0)
    };

    // Stages 2 + 3: phase assignment and DFF insertion share one
    // incremental timing engine — the winning descent state's arrivals and
    // memoized chain plans feed the emission pass directly, so nothing is
    // derived twice.
    stage_gate("flow.phase", clean.name())?;
    let mut engine = TimingEngine::new(&subject, config.phases)?;
    engine.assign(config.engine, config.restarts)?;
    stage_gate("flow.dff", clean.name())?;
    let timed = engine.emit();

    // Verification: audit + functional equivalence against the input.
    stage_gate("flow.verify", clean.name())?;
    timed.audit().map_err(FlowError::Audit)?;
    if config.equivalence_words > 0 {
        check_equivalence(&clean, &timed.network, config.equivalence_words)?;
    }

    let report = FlowReport {
        name: clean.name().to_string(),
        phases: config.phases,
        t1_found,
        t1_used,
        num_gates: timed.network.num_gates(),
        num_dffs: timed.num_dffs(),
        area: timed.area(&config.library),
        depth_cycles: timed.depth_cycles(),
    };
    Ok(FlowResult { timed, report })
}

/// Bit-parallel equivalence check on deterministic pseudo-random patterns.
fn check_equivalence(a: &Network, b: &Network, words: usize) -> Result<(), FlowError> {
    assert_eq!(
        a.num_inputs(),
        b.num_inputs(),
        "flows preserve the interface"
    );
    assert_eq!(
        a.num_outputs(),
        b.num_outputs(),
        "flows preserve the interface"
    );
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        // xorshift* — deterministic, dependency-free pattern source.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    for _ in 0..words {
        let pats: Vec<u64> = (0..a.num_inputs()).map(|_| next()).collect();
        let ra = a.simulate(&pats);
        let rb = b.simulate(&pats);
        for (k, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
            if x != y {
                return Err(FlowError::NotEquivalent { output: k });
            }
        }
    }
    Ok(())
}
