//! Timed (retimed) SFQ netlists and their structural timing audit.
//!
//! A [`TimedNetwork`] is the flow's final artifact: the mapped network with
//! all path-balancing DFFs materialized, a clock stage per cell, and a common
//! primary-output stage. [`TimedNetwork::audit`] re-checks every timing rule
//! of the multiphase model from scratch, so any bug in phase assignment or
//! DFF insertion surfaces as a hard error rather than silent waveform
//! corruption downstream.

use sfq_netlist::{CellId, CellKind, Library, Network};
use std::fmt;

/// Timing-rule violations detected by [`TimedNetwork::audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// A primary input is not at stage 0.
    InputNotAtZero {
        /// The offending input cell.
        cell: CellId,
    },
    /// A clocked cell fires no later than one of its fanins.
    NonCausalEdge {
        /// Driving cell.
        from: CellId,
        /// Consuming cell.
        to: CellId,
        /// Stage the driver fires at.
        from_stage: u32,
        /// Stage the consumer fires at.
        to_stage: u32,
    },
    /// A pulse would outlive one clock period on this edge.
    LifetimeExceeded {
        /// Driving cell.
        from: CellId,
        /// Consuming cell.
        to: CellId,
        /// Stage distance the pulse would have to survive.
        span: u32,
        /// Phases per clock period.
        phases: u8,
    },
    /// Two T1 fanins arrive at the same stage (paper eq. 5 violated).
    T1ArrivalCollision {
        /// The T1 cell whose inputs collide.
        t1: CellId,
        /// The shared arrival stage.
        stage: u32,
    },
    /// A T1 fanin arrives outside the cell's input window
    /// `[σ − (n−1), σ − 1]`.
    T1ArrivalOutsideWindow {
        /// The T1 cell.
        t1: CellId,
        /// Arrival stage of the offending fanin.
        fanin_stage: u32,
        /// Stage the T1 cell fires at.
        t1_stage: u32,
    },
    /// A primary-output driver does not fire at the common output stage.
    OutputMisaligned {
        /// Index into the output list.
        index: usize,
        /// Stage the driver fires at.
        driver_stage: u32,
        /// The common output stage.
        output_stage: u32,
    },
    /// The underlying network failed structural validation.
    Structural(String),
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::InputNotAtZero { cell } => {
                write!(f, "primary input c{} must be at stage 0", cell.0)
            }
            TimingError::NonCausalEdge {
                from,
                to,
                from_stage,
                to_stage,
            } => write!(
                f,
                "edge c{}→c{} is non-causal (stages {} → {})",
                from.0, to.0, from_stage, to_stage
            ),
            TimingError::LifetimeExceeded {
                from,
                to,
                span,
                phases,
            } => write!(
                f,
                "edge c{}→c{} spans {} stages, exceeding the {}-phase pulse lifetime",
                from.0, to.0, span, phases
            ),
            TimingError::T1ArrivalCollision { t1, stage } => write!(
                f,
                "two fanins of T1 cell c{} arrive at the same stage {}",
                t1.0, stage
            ),
            TimingError::T1ArrivalOutsideWindow {
                t1,
                fanin_stage,
                t1_stage,
            } => write!(
                f,
                "fanin at stage {} is outside the input window of T1 c{} at stage {}",
                fanin_stage, t1.0, t1_stage
            ),
            TimingError::OutputMisaligned {
                index,
                driver_stage,
                output_stage,
            } => write!(
                f,
                "output {} driven at stage {} but the common output stage is {}",
                index, driver_stage, output_stage
            ),
            TimingError::Structural(e) => write!(f, "structural error: {e}"),
        }
    }
}

impl std::error::Error for TimingError {}

/// A fully retimed multiphase SFQ netlist.
///
/// Invariants (checked by [`audit`](Self::audit)):
/// * primary inputs release pulses at stage 0;
/// * every edge spans `1..=n` stages (`n` = [`num_phases`](Self::num_phases));
/// * T1 fanins arrive at pairwise-distinct stages within `[σ−(n−1), σ−1]`;
/// * every primary output is driven by a cell firing at
///   [`output_stage`](Self::output_stage).
#[derive(Debug, Clone)]
pub struct TimedNetwork {
    /// The netlist, including inserted DFFs.
    pub network: Network,
    /// Clock stage per cell (`σ`, paper eq. 1). Inputs are at 0.
    pub stages: Vec<u32>,
    /// Number of clock phases per period (`n`).
    pub num_phases: u8,
    /// The common stage at which all primary outputs fire.
    pub output_stage: u32,
}

impl TimedNetwork {
    /// Clock phase of a cell: `φ(g) = σ(g) mod n`.
    pub fn phase(&self, id: CellId) -> u32 {
        self.stages[id.0 as usize] % self.num_phases as u32
    }

    /// Clock epoch of a cell: `S(g) = σ(g) div n`.
    pub fn epoch(&self, id: CellId) -> u32 {
        self.stages[id.0 as usize] / self.num_phases as u32
    }

    /// Stage of a cell.
    pub fn stage(&self, id: CellId) -> u32 {
        self.stages[id.0 as usize]
    }

    /// Logic depth in clock cycles: `⌈σ_out / n⌉` (paper Table I "Depth").
    pub fn depth_cycles(&self) -> u32 {
        self.output_stage.div_ceil(self.num_phases as u32)
    }

    /// Number of inserted path-balancing DFFs (paper Table I "#DFF").
    ///
    /// T1-internal latching DFFs are part of the macro-cell area, not of
    /// this count.
    pub fn num_dffs(&self) -> usize {
        self.network.num_dffs()
    }

    /// Total area in JJs, including implied splitter trees.
    pub fn area(&self, lib: &Library) -> u64 {
        self.network.area(lib)
    }

    /// Re-validates every timing rule of the multiphase model.
    ///
    /// # Errors
    /// The first violated rule, as a [`TimingError`].
    pub fn audit(&self) -> Result<(), TimingError> {
        let n = self.num_phases as u32;
        self.network
            .validate()
            .map_err(|e| TimingError::Structural(e.to_string()))?;
        assert_eq!(
            self.stages.len(),
            self.network.num_cells(),
            "stage per cell"
        );

        for &i in self.network.inputs() {
            if self.stages[i.0 as usize] != 0 {
                return Err(TimingError::InputNotAtZero { cell: i });
            }
        }
        for id in self.network.cell_ids() {
            let kind = self.network.kind(id);
            if !kind.is_clocked() {
                continue;
            }
            let to_stage = self.stages[id.0 as usize];
            let is_t1 = matches!(kind, CellKind::T1 { .. });
            let mut arrivals = Vec::new();
            for f in self.network.fanins(id) {
                let from_stage = self.stages[f.cell.0 as usize];
                if from_stage >= to_stage {
                    return Err(TimingError::NonCausalEdge {
                        from: f.cell,
                        to: id,
                        from_stage,
                        to_stage,
                    });
                }
                let span = to_stage - from_stage;
                if is_t1 {
                    // Window [σ−(n−1), σ−1]: span ∈ [1, n−1].
                    if span > n - 1 {
                        return Err(TimingError::T1ArrivalOutsideWindow {
                            t1: id,
                            fanin_stage: from_stage,
                            t1_stage: to_stage,
                        });
                    }
                    arrivals.push(from_stage);
                } else if span > n {
                    return Err(TimingError::LifetimeExceeded {
                        from: f.cell,
                        to: id,
                        span,
                        phases: self.num_phases,
                    });
                }
            }
            if is_t1 {
                arrivals.sort_unstable();
                for w in arrivals.windows(2) {
                    if w[0] == w[1] {
                        return Err(TimingError::T1ArrivalCollision {
                            t1: id,
                            stage: w[0],
                        });
                    }
                }
            }
        }
        for (k, o) in self.network.outputs().iter().enumerate() {
            let s = self.stages[o.cell.0 as usize];
            if s != self.output_stage {
                return Err(TimingError::OutputMisaligned {
                    index: k,
                    driver_stage: s,
                    output_stage: self.output_stage,
                });
            }
        }
        Ok(())
    }
}
