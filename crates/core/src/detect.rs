//! T1-FF detection and replacement (paper §II-A).
//!
//! Detection is cut enumeration followed by Boolean matching: all 3-leaf cuts
//! are grouped by `(leaf set, input-polarity mask)`; a group whose members'
//! functions are all T1-realizable (XOR3 on `S`, MAJ3 on `C`, OR3 on `Q`,
//! ¬MAJ3 on `C*`+INV, ¬OR3 on `Q*`+INV) is a candidate T1 macro-cell.
//! Its gain is `ΔA = Σ A(MFFC(uᵢ)) − A_T1(C)` (eq. 2), where `A_T1` includes
//! the bare cell, the two input mergers, per-port latching DFFs / inverters,
//! and an inverter per negated leaf. Candidates with positive gain are
//! *found*; a greedy non-overlapping commit in descending-gain order decides
//! which are *used*, and the network is rebuilt with multi-output T1 cells.
//!
//! # Data layout (see `benches/hotpaths.rs` for the regression gates)
//!
//! The stage got the ISSUE 2 hot-path treatment and the ISSUE 3
//! pruning/parallelism pass; the original implementation survives verbatim
//! as [`crate::detect_reference::detect_t1_reference`], and the
//! differential harness asserts bit-identical detections:
//!
//! * **Match collection is a sorted record list, not a hash map**: every
//!   `(leaf set, mask, root, port)` match is one 32-byte record whose
//!   `(leaves, mask)` key is packed into a single `u128`
//!   (`group_key`), appended to one flat `Vec` and brought into runs by
//!   an unstable integer-key sort (per-root leaf sets are unique by cut
//!   dominance, so `(key, root)` is duplicate-free). Boolean matching
//!   probes [`T1MatchDb::realizable_masks`] — one byte answers
//!   "realizable under any polarity?" before any per-mask lookup runs.
//! * **Group evaluation runs on dense scratch**: port ownership is a fixed
//!   5-slot array, the joint-MFFC walk marks `taken`/`in_cone` in per-cell
//!   vectors reset via touch lists, and the greedy commit keeps its
//!   claimed/used/alive sets as per-cell bitmaps — the only hashing left in
//!   the whole stage is inside cut enumeration's signature scheme.
//! * **The rewrite phase is index-based**: the old-signal → new-signal map
//!   is a flat `(cell × port)` table probed by array index, group
//!   membership is a dense per-cell vector, and the shared input-inverter
//!   cache is a short linear-scanned list (committed groups rarely negate
//!   more than a handful of leaves).
//! * **The `parallel` feature (a workspace default) fans every
//!   data-parallel phase over `std::thread::scope` workers**: the per-cell
//!   match scan (`collect_matches`) and per-run group scoring
//!   (`evaluate_candidates`) merge private buffers in chunk order, the
//!   record sort runs as sorted chunks + deterministic k-way merge
//!   (`sfq_netlist::par::sort_unstable_by_key`, valid because `(key,
//!   root)` is duplicate-free), and the run-boundary scan chunks at
//!   run-aligned boundaries (`run_boundaries`). Every merge is input- or
//!   chunk-ordered, so the record and candidate sequences — and therefore
//!   the committed groups and the rebuilt network — are bit-identical to
//!   the sequential build at any worker count. The greedy commit and the
//!   id-assigning rebuild stay sequential by design: both *define* the
//!   deterministic order the rest of the flow depends on. Cut enumeration
//!   parallelizes one crate down (`sfq_netlist::cuts`, work-stealing over
//!   a dependency-counted frontier).
//!
//! Measured effect (criterion medians, one dev machine, see
//! `BENCH_flow.json`): ISSUE 2 took `detect_t1/adder32` 171 µs → 70 µs and
//! `detect_t1/multiplier12` 1.78 ms → 0.87 ms; the ISSUE 3 pass
//! (cut prefilter + packed keys + mask-set probe + inline network fanins)
//! took `multiplier12` on to 503 µs (1.7×) and paper-scale
//! `detect_t1/log2` 46.2 ms → 29.6 ms (1.6×), with the whole paper-scale
//! detect stage of `profile_scale` dropping 1.5–2.1× per benchmark.

use sfq_netlist::{
    enumerate_cuts, CellId, CellKind, CutConfig, Library, Network, Signal, T1Port, T1_NUM_PORTS,
};
use sfq_tt::T1MatchDb;

/// One committed or candidate T1 macro-cell.
#[derive(Debug, Clone)]
pub struct T1Group {
    /// The three cut leaves, sorted (the cell's logical inputs before
    /// polarity inverters).
    pub leaves: [Signal; 3],
    /// Input-polarity mask: bit `i` set ⇒ leaf `i` feeds through an inverter.
    pub input_mask: u8,
    /// Replaced root nodes and the port each one maps to.
    pub roots: Vec<(CellId, T1Port)>,
    /// Used-port bitmask (indices per [`T1Port::index`]).
    pub used_ports: u8,
    /// Area gain `ΔA` in JJs (eq. 2); positive for every found group.
    pub gain: i64,
    /// Interior cells (MFFC minus roots) that die with the replacement.
    pub dead: Vec<CellId>,
}

/// Result of T1 detection on a mapped network.
#[derive(Debug, Clone)]
pub struct T1Detection {
    /// The rewritten network (unchanged copy when `used == 0`).
    pub network: Network,
    /// Number of positive-gain candidate groups (Table I "T1 cells found").
    pub found: usize,
    /// Number of committed groups (Table I "T1 cells used").
    pub used: usize,
    /// The committed groups, in commit order.
    pub groups: Vec<T1Group>,
}

/// Runs T1 detection and replacement on a mapped gate network.
///
/// `net` must contain only inputs and plain gates (the pre-retiming subject
/// network); DFFs or earlier T1 cells act as cut boundaries and are never
/// replaced.
pub fn detect_t1(net: &Network, lib: &Library, cut_config: &CutConfig) -> T1Detection {
    detect_t1_with_threshold(net, lib, cut_config, 0)
}

/// Packs a 3-leaf set plus polarity mask into one `u128` (three 40-bit pin
/// ids, 3 mask bits) whose numeric order equals the lexicographic order on
/// `(leaves, mask)`. One word compare replaces a field-by-field struct
/// compare in the group-run sort, the hottest non-enumeration part of
/// collection.
#[inline]
fn group_key(leaves: &[Signal; 3], mask: u8) -> u128 {
    let mut key = 0u128;
    for l in leaves {
        key = (key << 40) | u128::from((u64::from(l.cell.0) << 8) | u64::from(l.port));
    }
    (key << 3) | u128::from(mask)
}

/// Recovers the leaf set and polarity mask from a [`group_key`] word.
#[inline]
fn unpack_group_key(key: u128) -> ([Signal; 3], u8) {
    let mask = (key & 7) as u8;
    let mut leaves = [Signal {
        cell: CellId(0),
        port: 0,
    }; 3];
    let mut v = key >> 3;
    for l in leaves.iter_mut().rev() {
        l.port = (v & 0xFF) as u8;
        l.cell = CellId(((v >> 8) & 0xFFFF_FFFF) as u32);
        v >>= 40;
    }
    (leaves, mask)
}

/// One Boolean match found during collection: a root realizable on `port`
/// when the group `(leaves, mask)` is committed. 32 bytes (the `u128` key
/// is 16-byte aligned) — the group sort moves packed keys, not leaf
/// arrays (leaves are recovered per *run*, not per record, via
/// [`unpack_group_key`]). `Copy` keeps the parallel chunk sort's k-way
/// merge to trivial element moves.
#[derive(Clone, Copy)]
struct Rec {
    /// Packed `(leaves, mask)` — see [`group_key`].
    key: u128,
    root: CellId,
    port: T1Port,
}

/// Scans every gate's 3-leaf cuts against the T1 match table, emitting one
/// record per `(leaf set, polarity mask, realizable port)` in ascending cell
/// order. Pure per-cell work over read-only inputs — the first fan-out point
/// of the `parallel` feature.
fn collect_matches(net: &Network, cuts: &sfq_netlist::CutSet, db: &T1MatchDb) -> Vec<Rec> {
    let n = net.num_cells() as u32;
    #[cfg(feature = "parallel")]
    {
        let workers = sfq_netlist::par::workers();
        // A worker must amortize its spawn; small nets run inline.
        if workers > 1 && n >= 1024 {
            let chunk = (n as usize).div_ceil(workers) as u32;
            let bounds: Vec<(u32, u32)> = (0..workers as u32)
                .map(|w| ((w * chunk).min(n), ((w + 1) * chunk).min(n)))
                .collect();
            let parts: Vec<Vec<Rec>> = std::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        scope.spawn(move || {
                            let mut recs = Vec::new();
                            collect_matches_range(net, cuts, db, lo..hi, &mut recs);
                            recs
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            });
            // Concatenating in chunk order preserves ascending cell order —
            // the exact record sequence the sequential scan produces.
            let mut parts = parts.into_iter();
            let mut recs = parts.next().unwrap_or_default();
            for part in parts {
                recs.extend(part);
            }
            return recs;
        }
    }
    let mut recs: Vec<Rec> = Vec::with_capacity(cuts.total() / 2);
    collect_matches_range(net, cuts, db, 0..n, &mut recs);
    recs
}

/// [`collect_matches`] over one contiguous cell-id range, appending to
/// `recs`. Pure function of read-only inputs, so ranges can run on any
/// thread; concatenation in range order reproduces the full sequential scan.
fn collect_matches_range(
    net: &Network,
    cuts: &sfq_netlist::CutSet,
    db: &T1MatchDb,
    range: std::ops::Range<u32>,
    recs: &mut Vec<Rec>,
) {
    for id in range.map(CellId) {
        if !matches!(net.kind(id), CellKind::Gate(_)) {
            continue;
        }
        for cut in cuts.of(id) {
            if cut.leaves.len() != 3 {
                continue;
            }
            // One byte probe answers "realizable under any mask?" — almost
            // always no — before the per-mask lookups run.
            let mut masks = db.realizable_masks(&cut.tt);
            if masks == 0 {
                continue;
            }
            let leaves: [Signal; 3] = [cut.leaves[0], cut.leaves[1], cut.leaves[2]];
            while masks != 0 {
                let mask = masks.trailing_zeros() as u8;
                masks &= masks - 1;
                let m = db.lookup(&cut.tt, mask).expect("mask-set bit is backed");
                // S has no complement pin (see sfq-tt docs).
                let Some(port) = T1Port::for_match(m.base, m.output_negated) else {
                    continue;
                };
                recs.push(Rec {
                    key: group_key(&leaves, mask),
                    root: id,
                    port,
                });
            }
        }
    }
}

/// [`detect_t1`] with an explicit gain cutoff: only groups with
/// `ΔA > threshold` JJs are considered found (the paper uses `ΔA > 0`).
///
/// Raising the threshold trades T1 conversions for fewer extra pipeline
/// stages — the Ext-C ablation of DESIGN.md §6.
pub fn detect_t1_with_threshold(
    net: &Network,
    lib: &Library,
    cut_config: &CutConfig,
    threshold: i64,
) -> T1Detection {
    let n = net.num_cells();
    let db = T1MatchDb::new();
    let cuts = enumerate_cuts(net, cut_config);
    let refs = sfq_netlist::mffc::reference_counts(net);

    // ---- collect matches as one flat record list -------------------------
    // No per-root leaf-set dedup is needed: cut enumeration's dominance
    // pruning kills equal leaf sets, so each root's stored 3-cuts already
    // carry distinct leaves (asserted by the differential harness against
    // the reference detector, which still dedups defensively).
    let mut recs: Vec<Rec> = collect_matches(net, &cuts, &db);
    // Bring each (leaves, mask) group together as one run. Within a group
    // at most one record exists per root (one function per node per leaf
    // set) and collection emits roots in ascending cell order, so sorting
    // unstably by `(key, root)` reproduces the per-group root insertion
    // order the reference's HashMap-of-Vecs maintained. `(key, root)` is
    // duplicate-free — a strict total order — so the chunked parallel sort
    // (sorted chunks + deterministic k-way merge) is byte-identical to the
    // sequential sort for every worker count.
    sfq_netlist::par::sort_unstable_by_key(&mut recs, |r| (r.key, r.root));

    // ---- evaluate candidates ---------------------------------------------
    // Split the sorted records into (leaves, mask) runs, then score each run
    // independently (the second fan-out point of the `parallel` feature).
    let runs = run_boundaries(&recs);
    let mut candidates = evaluate_candidates(net, lib, &refs, &recs, &runs, threshold);
    let found = candidates.len();

    // ---- greedy non-overlapping commit ------------------------------------
    candidates.sort_by(|a, b| {
        b.gain
            .cmp(&a.gain)
            .then_with(|| a.leaves.cmp(&b.leaves))
            .then_with(|| a.input_mask.cmp(&b.input_mask))
    });
    let mut claimed_dead = vec![false; n];
    let mut used_roots = vec![false; n];
    let mut needed_alive = vec![false; n];
    let mut committed: Vec<T1Group> = Vec::new();
    for g in candidates {
        let conflict = g.roots.iter().any(|&(r, _)| {
            used_roots[r.0 as usize] || claimed_dead[r.0 as usize] || needed_alive[r.0 as usize]
        }) || g.dead.iter().any(|c| {
            claimed_dead[c.0 as usize] || used_roots[c.0 as usize] || needed_alive[c.0 as usize]
        }) || g.leaves.iter().any(|l| claimed_dead[l.cell.0 as usize])
            || g.dead.iter().any(|c| g.leaves.iter().any(|l| l.cell == *c));
        if conflict {
            continue;
        }
        for c in &g.dead {
            claimed_dead[c.0 as usize] = true;
        }
        for &(r, _) in &g.roots {
            used_roots[r.0 as usize] = true;
        }
        for l in &g.leaves {
            needed_alive[l.cell.0 as usize] = true;
        }
        committed.push(g);
    }
    let used = committed.len();

    // ---- rebuild the network ----------------------------------------------
    let network = rebuild(net, &committed, &claimed_dead);
    T1Detection {
        network,
        found,
        used,
        groups: committed,
    }
}

/// Splits sorted records into `(start, end)` runs of equal [`group_key`]s.
/// With the `parallel` feature and enough records the scan is chunked over
/// scoped workers at *run-aligned* boundaries (each chunk starts where a
/// key first differs from its predecessor, so no run straddles two chunks)
/// and the per-chunk run lists are concatenated in chunk order — the exact
/// sequence the sequential scan produces.
fn run_boundaries(recs: &[Rec]) -> Vec<(u32, u32)> {
    #[cfg(feature = "parallel")]
    {
        let workers = sfq_netlist::par::workers();
        let n = recs.len();
        if workers > 1 && n >= 4096 {
            let chunk = n.div_ceil(workers);
            let mut bounds: Vec<usize> = vec![0];
            let mut pos = chunk;
            while pos < n {
                // `pos` may land mid-run; advance to the next run start so
                // the straddling run stays whole in the previous chunk.
                while pos < n && recs[pos].key == recs[pos - 1].key {
                    pos += 1;
                }
                if pos >= n {
                    break;
                }
                bounds.push(pos);
                pos += chunk;
            }
            bounds.push(n);
            if bounds.len() > 2 {
                let parts: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = bounds
                        .windows(2)
                        .map(|w| {
                            let (lo, hi) = (w[0], w[1]);
                            scope.spawn(move || scan_runs(recs, lo, hi))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                        })
                        .collect()
                });
                return parts.concat();
            }
        }
    }
    scan_runs(recs, 0, recs.len())
}

/// The run scan over one record range (absolute indices). `lo` must be a
/// run start and `hi` a run end, which chunk alignment guarantees.
fn scan_runs(recs: &[Rec], lo: usize, hi: usize) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut start = lo;
    while start < hi {
        let key = recs[start].key;
        let mut end = start + 1;
        while end < hi && recs[end].key == key {
            end += 1;
        }
        runs.push((start as u32, end as u32));
        start = end;
    }
    runs
}

/// Scores every `(leaves, mask)` run, fanning run slices over scoped worker
/// threads when the `parallel` feature is on and the run list is large
/// enough to amortize the spawns. Chunk-order concatenation preserves run
/// order, so the candidate list matches the sequential scan exactly.
fn evaluate_candidates(
    net: &Network,
    lib: &Library,
    refs: &[u32],
    recs: &[Rec],
    runs: &[(u32, u32)],
    threshold: i64,
) -> Vec<T1Group> {
    #[cfg(feature = "parallel")]
    {
        let workers = sfq_netlist::par::workers();
        if workers > 1 && runs.len() >= 256 {
            // Budgets are thread-local (worker ticks are no-ops), so charge
            // the whole scoring pass on the coordinator — the same total the
            // sequential loop accumulates one run at a time.
            sfq_netlist::budget::tick(runs.len() as u64);
            let chunk = runs.len().div_ceil(workers);
            let parts: Vec<Vec<T1Group>> = std::thread::scope(|scope| {
                let handles: Vec<_> = runs
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            #[cfg(feature = "fault-injection")]
                            sfq_netlist::faultpt::hit("par.detect", net.name());
                            evaluate_runs(net, lib, refs, recs, part, threshold)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Preserve worker panic payloads for the supervisor.
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            });
            return parts.into_iter().flatten().collect();
        }
    }
    evaluate_runs(net, lib, refs, recs, runs, threshold)
}

/// Scores a slice of `(leaves, mask)` runs: assigns ports, walks the joint
/// MFFC and keeps groups whose area gain beats `threshold`. Runs only read
/// shared immutable state (each carries private scratch), so run slices can
/// be scored on worker threads; concatenating slice results in run order
/// reproduces the sequential candidate list.
fn evaluate_runs(
    net: &Network,
    lib: &Library,
    refs: &[u32],
    recs: &[Rec],
    runs: &[(u32, u32)],
    threshold: i64,
) -> Vec<T1Group> {
    let mut candidates: Vec<T1Group> = Vec::new();
    // Reused per-run scratch.
    let mut port_owner: [Vec<CellId>; T1_NUM_PORTS] = Default::default();
    let mut sorted_roots: Vec<CellId> = Vec::new();
    let mut mffc = MffcScratch::new(net.num_cells());
    for &(start, end) in runs {
        // Supervised-flow budget check (no-op on worker threads and
        // whenever no budget is installed); the parallel driver charges the
        // identical total up front, so abort decisions match across builds.
        sfq_netlist::budget::tick(1);
        let entries = &recs[start as usize..end as usize];
        let (leaves, mask) = unpack_group_key(entries[0].key);

        // Assign ports: first root wins a port; later roots with the same
        // port share it only if they are *distinct* cells (duplicate logic).
        for owners in &mut port_owner {
            owners.clear();
        }
        for e in entries {
            let owners = &mut port_owner[e.port.index() as usize];
            if !owners.contains(&e.root) {
                owners.push(e.root);
            }
        }
        let mut roots: Vec<(CellId, T1Port)> = Vec::new();
        let mut used_ports = 0u8;
        for (pidx, owners) in port_owner.iter().enumerate() {
            if owners.is_empty() {
                continue;
            }
            used_ports |= 1 << pidx;
            for &r in owners {
                roots.push((r, T1Port::from_index(pidx as u8)));
            }
        }
        // A root matched on several ports (impossible: one function per
        // node per leaf set) — and the paper requires ≥ 2 cuts per group.
        sorted_roots.clear();
        sorted_roots.extend(roots.iter().map(|&(r, _)| r));
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        if sorted_roots.len() < 2 {
            continue;
        }

        // Joint MFFC of all roots, with leaves pinned alive.
        let (cone, cone_area) = mffc.group_mffc(net, &sorted_roots, &leaves, refs, lib);

        let t1_cost = lib.t1_area(used_ports) as i64 + (mask.count_ones() as i64) * lib.inv as i64;
        let gain = cone_area as i64 - t1_cost;
        if gain <= threshold {
            continue;
        }
        let dead: Vec<CellId> = cone
            .iter()
            .copied()
            .filter(|c| sorted_roots.binary_search(c).is_err())
            .collect();
        candidates.push(T1Group {
            leaves,
            input_mask: mask,
            roots,
            used_ports,
            gain,
            dead,
        });
    }
    candidates
}

/// Dense scratch for the joint-MFFC walks: per-cell counters and membership
/// flags reset via touch lists so one allocation serves every group.
struct MffcScratch {
    taken: Vec<u32>,
    touched: Vec<u32>,
    in_cone: Vec<bool>,
    cone: Vec<CellId>,
    stack: Vec<CellId>,
}

impl MffcScratch {
    fn new(n: usize) -> Self {
        MffcScratch {
            taken: vec![0; n],
            touched: Vec::new(),
            in_cone: vec![false; n],
            cone: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Joint MFFC of several roots with pinned leaves: the set of cells that
    /// die when all roots are replaced, never crossing leaves, inputs, or
    /// non-gate cells. `roots` must be sorted. Returns the cone (roots
    /// included) and the area of its cells; the returned slice is valid until
    /// the next call.
    fn group_mffc(
        &mut self,
        net: &Network,
        roots: &[CellId],
        leaves: &[Signal; 3],
        refs: &[u32],
        lib: &Library,
    ) -> (&[CellId], u64) {
        // Reset marks from the previous group.
        for &t in &self.touched {
            self.taken[t as usize] = 0;
        }
        self.touched.clear();
        for &c in &self.cone {
            self.in_cone[c.0 as usize] = false;
        }
        self.cone.clear();
        self.cone.extend_from_slice(roots);
        self.stack.clear();
        self.stack.extend_from_slice(roots);
        for &r in roots {
            self.in_cone[r.0 as usize] = true;
        }
        while let Some(id) = self.stack.pop() {
            for f in net.fanins(id) {
                let d = f.cell;
                if leaves.iter().any(|l| l.cell == d)
                    || roots.binary_search(&d).is_ok()
                    || self.in_cone[d.0 as usize]
                {
                    continue;
                }
                let t = &mut self.taken[d.0 as usize];
                if *t == 0 {
                    self.touched.push(d.0);
                }
                *t += 1;
                if *t == refs[d.0 as usize] && matches!(net.kind(d), CellKind::Gate(_)) {
                    self.cone.push(d);
                    self.in_cone[d.0 as usize] = true;
                    self.stack.push(d);
                }
            }
        }
        let area = self.cone.iter().map(|&c| lib.cell_area(net.kind(c))).sum();
        (&self.cone, area)
    }
}

/// The complement of `base` in the network under construction: when `base`
/// is a complementable T1 port (`C ↔ C*+INV`, `Q ↔ Q*+INV`), enable and use
/// the twin port — same stage, no extra pipeline level; otherwise a shared
/// clocked inverter cell. Keeping the carry chain inverter-free is what lets
/// T1 ripple structures advance one stage per bit (DESIGN.md §3.1).
///
/// `inv_cache` is a short linear-scanned list: committed groups rarely
/// negate more than a handful of distinct leaves.
fn negated_signal(
    out: &mut Network,
    base: Signal,
    inv_cache: &mut Vec<(Signal, Signal)>,
) -> Signal {
    if out.kind(base.cell).is_t1() {
        if let Some(twin) = T1Port::from_index(base.port).complement() {
            return out.enable_t1_port(base.cell, twin);
        }
    }
    if let Some(&(_, inv)) = inv_cache.iter().find(|&&(b, _)| b == base) {
        return inv;
    }
    let inv = out.add_gate(sfq_netlist::GateKind::Inv, &[base]);
    inv_cache.push((base, inv));
    inv
}

/// Dense old-signal → new-signal translation table: one slot per
/// `(cell, port)` pair, probed by array index.
struct SignalMap {
    map: Vec<Signal>,
}

const UNMAPPED: Signal = Signal {
    cell: CellId(u32::MAX),
    port: 0,
};

impl SignalMap {
    fn new(n: usize) -> Self {
        SignalMap {
            map: vec![UNMAPPED; n * T1_NUM_PORTS],
        }
    }

    #[inline]
    fn set(&mut self, old: Signal, new: Signal) {
        self.map[old.cell.0 as usize * T1_NUM_PORTS + old.port as usize] = new;
    }

    #[inline]
    fn get(&self, old: Signal) -> Option<Signal> {
        let s = self.map[old.cell.0 as usize * T1_NUM_PORTS + old.port as usize];
        (s.cell != UNMAPPED.cell).then_some(s)
    }
}

fn rebuild(net: &Network, groups: &[T1Group], dead: &[bool]) -> Network {
    let n = net.num_cells();
    let order = net.topological_order().expect("subject network is acyclic");
    let mut out = Network::new(net.name().to_string());
    // old signal → new signal (roots map to T1 ports).
    let mut remap = SignalMap::new(n);
    // first root (in topo order) of each group triggers materialization.
    let mut group_of_root: Vec<u32> = vec![u32::MAX; n];
    for (gi, g) in groups.iter().enumerate() {
        for &(r, _) in &g.roots {
            group_of_root[r.0 as usize] = gi as u32;
        }
    }
    let mut materialized: Vec<Option<CellId>> = vec![None; groups.len()];
    // Shared input inverters: (leaf signal) → INV output in the new network.
    let mut inv_cache: Vec<(Signal, Signal)> = Vec::new();
    let mut fanin_buf: Vec<Signal> = Vec::with_capacity(3);

    let mut inputs_done = 0usize;
    for id in order {
        if dead[id.0 as usize] {
            continue;
        }
        let gi = group_of_root[id.0 as usize];
        if gi != u32::MAX {
            let gi = gi as usize;
            // Materialize the T1 cell once, then map this root to its port.
            if materialized[gi].is_none() {
                let g = &groups[gi];
                fanin_buf.clear();
                for (li, leaf) in g.leaves.iter().enumerate() {
                    let base = remap.get(*leaf).unwrap_or_else(|| {
                        panic!("leaf {leaf:?} must precede root in topological order")
                    });
                    if g.input_mask >> li & 1 == 1 {
                        let neg = negated_signal(&mut out, base, &mut inv_cache);
                        fanin_buf.push(neg);
                    } else {
                        fanin_buf.push(base);
                    }
                }
                materialized[gi] = Some(out.add_t1(g.used_ports, &fanin_buf));
            }
            let t1 = materialized[gi].unwrap();
            let g = &groups[gi];
            let port = g
                .roots
                .iter()
                .find(|&&(r, _)| r == id)
                .map(|&(_, p)| p)
                .expect("root registered in its group");
            remap.set(Signal::from_cell(id), Signal::t1(t1, port));
            continue;
        }
        // Ordinary copy.
        match net.kind(id) {
            CellKind::Input => {
                let k = inputs_done;
                inputs_done += 1;
                let s = out.add_input(net.input_name(k).to_string());
                remap.set(Signal::from_cell(id), s);
            }
            CellKind::Gate(gk) => {
                fanin_buf.clear();
                fanin_buf.extend(
                    net.fanins(id)
                        .iter()
                        .map(|f| remap.get(*f).expect("fanin precedes cell")),
                );
                let s = out.add_gate(gk, &fanin_buf);
                remap.set(Signal::from_cell(id), s);
            }
            CellKind::T1 { used_ports } => {
                fanin_buf.clear();
                fanin_buf.extend(
                    net.fanins(id)
                        .iter()
                        .map(|f| remap.get(*f).expect("fanin precedes cell")),
                );
                let new_id = out.add_t1(used_ports, &fanin_buf);
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        remap.set(Signal::t1(id, port), Signal::t1(new_id, port));
                    }
                }
            }
            CellKind::Dff => {
                let f = net.fanins(id)[0];
                let s = out.add_dff(remap.get(f).expect("fanin precedes cell"));
                remap.set(Signal::from_cell(id), s);
            }
        }
    }
    for (k, &o) in net.outputs().iter().enumerate() {
        let s = remap.get(o).expect("output driver is live");
        out.add_output(net.output_name(k).to_string(), s);
    }
    out
}
