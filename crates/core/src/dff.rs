//! DFF insertion (paper §II-C).
//!
//! Given a stage assignment, every driven pin receives one shared DFF chain
//! (planned by [`crate::chains`]); plain sinks tap the chain inside their
//! pulse-lifetime window, T1 fanins tap exact arrival stages chosen by the
//! CP-style arrival solver (pairwise distinct — eq. 5), and primary outputs
//! tap the common output stage. The result is a [`TimedNetwork`] whose audit
//! re-verifies every rule independently.
//!
//! Since the timing-engine refactor, [`insert_dffs`] is a thin wrapper: it
//! loads the assignment into a [`TimingEngine`](crate::engine::TimingEngine)
//! (which resolves arrivals and memoizes the chain plans) and then runs
//! `emit_planned` — a straight, hash-free emission pass over flat
//! `cell × port` remap tables and CSR chain plans. The original
//! HashMap-based implementation survives as [`insert_dffs_reference`], the
//! executable specification the differential harness diffs against.

use crate::chains::{plan_chain, tap_for_plain, ChainDemand};
use crate::phase::{build_view, flat_pin, ArrivalCache, NetView, PhaseError, StageAssignment};
use crate::timed::TimedNetwork;
use sfq_netlist::{CellId, CellKind, Network, Signal, T1Port, T1_NUM_PORTS};
use std::collections::HashMap;

/// Materializes the DFF chains dictated by `assignment` and returns the
/// fully retimed network.
///
/// Runs on the incremental timing engine; bit-identical to
/// [`insert_dffs_reference`].
///
/// # Errors
/// [`PhaseError::BadNetwork`] if the network is malformed, or
/// [`PhaseError::TooFewPhasesForT1`] if a T1 arrival assignment is
/// infeasible (cannot happen for assignments produced by
/// [`assign_phases`](crate::assign_phases)).
pub fn insert_dffs(
    net: &Network,
    assignment: &StageAssignment,
    n: u8,
) -> Result<TimedNetwork, PhaseError> {
    let mut engine = crate::engine::TimingEngine::with_assignment(net, n, assignment)?;
    Ok(engine.emit())
}

/// The pre-engine DFF insertion, kept alive as the executable specification
/// of [`insert_dffs`]: re-derives every chain demand from the network and
/// materializes chains through hash-map remap tables.
/// `tests/differential_mapping.rs` asserts bit-identical [`TimedNetwork`]s
/// against the engine-backed emission across every benchmark generator.
///
/// # Errors
/// As [`insert_dffs`].
pub fn insert_dffs_reference(
    net: &Network,
    assignment: &StageAssignment,
    n: u8,
) -> Result<TimedNetwork, PhaseError> {
    let nn = n as u32;
    let view = build_view(net)?;
    let stages = &assignment.stages;
    let sigma_out = assignment.output_stage;

    // ---- resolve T1 arrivals (shared solver with phase assignment) -------
    // The same memoized solver the phase engines use: T1 cells in regular
    // structures (adder carry chains, multiplier compressor trees) repeat
    // the same relative fanin geometry, so most solves are cache hits.
    let arrival_cache = ArrivalCache::new();
    // (t1, fanin index) → arrival stage.
    let mut arrival: HashMap<(CellId, usize), u32> = HashMap::new();
    for &t1 in &view.t1_cells {
        let f = net.fanins(t1);
        let fs = [
            stages[f[0].cell.0 as usize],
            stages[f[1].cell.0 as usize],
            stages[f[2].cell.0 as usize],
        ];
        let arr = arrival_cache
            .solve(fs, stages[t1.0 as usize], nn)
            .ok_or(PhaseError::TooFewPhasesForT1 { phases: n })?;
        // The paper solves this sub-problem on CP-SAT; our CP model must
        // agree with the enumerator on cost (eq. 5 + DFF objective).
        #[cfg(debug_assertions)]
        {
            use crate::phase::{arrival_cost, solve_arrivals_cp};
            let cp = solve_arrivals_cp(fs, stages[t1.0 as usize], nn)
                .expect("CP model feasible whenever the enumerator is");
            debug_assert_eq!(
                arrival_cost(fs, arr, nn),
                arrival_cost(fs, cp, nn),
                "CP arrival model diverged from the enumerator"
            );
        }
        for (k, &a) in arr.iter().enumerate() {
            arrival.insert((t1, k), a);
        }
    }

    // ---- plan chains per pin ----------------------------------------------
    // pin → sorted DFF stages.
    let mut chain_plan: HashMap<Signal, Vec<u32>> = HashMap::new();
    for (pin, sinks) in &view.pins {
        let su = stages[pin.cell.0 as usize];
        let mut demand = ChainDemand::default();
        for &v in &sinks.plain {
            demand.plain.push(stages[v.0 as usize]);
        }
        for &(t1, k) in &sinks.t1 {
            let a = arrival[&(t1, k)];
            if a > su {
                demand.exact.push(a);
            }
        }
        if sinks.outputs > 0 && sigma_out > su {
            demand.exact.push(sigma_out);
        }
        if !demand.is_empty() {
            chain_plan.insert(*pin, plan_chain(su, &demand, nn));
        }
    }

    // ---- rebuild with DFF cells -------------------------------------------
    let mut out = Network::new(net.name().to_string());
    let mut out_stages: Vec<u32> = Vec::new();
    // old signal → new signal of the driver itself.
    let mut remap: HashMap<Signal, Signal> = HashMap::new();
    // (old pin, chain stage) → new DFF output signal.
    let mut tap_signal: HashMap<(Signal, u32), Signal> = HashMap::new();
    let mut inputs_done = 0usize;

    // Resolve the new-network signal a sink should read for an old fanin.
    let resolve_plain = |f: Signal,
                         sink_stage: u32,
                         remap: &HashMap<Signal, Signal>,
                         tap_signal: &HashMap<(Signal, u32), Signal>,
                         chain_plan: &HashMap<Signal, Vec<u32>>,
                         stages: &[u32]|
     -> Signal {
        let su = stages[f.cell.0 as usize];
        let chain = chain_plan.get(&f).map(Vec::as_slice).unwrap_or(&[]);
        match tap_for_plain(su, chain, sink_stage, nn) {
            None => remap[&f],
            Some(t) => tap_signal[&(f, t)],
        }
    };

    for &id in &view.order {
        let kind = net.kind(id);
        let my_stage = stages[id.0 as usize];
        let new_sig = match kind {
            CellKind::Input => {
                let k = inputs_done;
                inputs_done += 1;
                let s = out.add_input(net.input_name(k).to_string());
                out_stages.push(0);
                s
            }
            CellKind::Gate(g) => {
                let fanins: Vec<Signal> = net
                    .fanins(id)
                    .iter()
                    .map(|&f| resolve_plain(f, my_stage, &remap, &tap_signal, &chain_plan, stages))
                    .collect();
                let s = out.add_gate(g, &fanins);
                out_stages.push(my_stage);
                s
            }
            CellKind::T1 { used_ports } => {
                let fanins: Vec<Signal> = net
                    .fanins(id)
                    .iter()
                    .enumerate()
                    .map(|(k, &f)| {
                        let a = arrival[&(id, k)];
                        let su = stages[f.cell.0 as usize];
                        if a == su {
                            remap[&f]
                        } else {
                            tap_signal[&(f, a)]
                        }
                    })
                    .collect();
                let new_id = out.add_t1(used_ports, &fanins);
                out_stages.push(my_stage);
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        remap.insert(Signal::t1(id, port), Signal::t1(new_id, port));
                    }
                }
                // Port-0 placeholder mapping for uniformity below.
                Signal::from_cell(new_id)
            }
            CellKind::Dff => {
                let f = net.fanins(id)[0];
                let s = out.add_dff(resolve_plain(
                    f,
                    my_stage,
                    &remap,
                    &tap_signal,
                    &chain_plan,
                    stages,
                ));
                out_stages.push(my_stage);
                s
            }
        };
        if !matches!(kind, CellKind::T1 { .. }) {
            remap.insert(Signal::from_cell(id), new_sig);
        }
        // Materialize this cell's chains now that the cell exists.
        for port in 0..kind.num_ports() {
            let pin = Signal {
                cell: id,
                port: port as u8,
            };
            let Some(chain) = chain_plan.get(&pin) else {
                continue;
            };
            let mut prev = remap[&pin];
            for &t in chain {
                let d = out.add_dff(prev);
                out_stages.push(t);
                tap_signal.insert((pin, t), d);
                prev = d;
            }
        }
    }

    for (k, &o) in net.outputs().iter().enumerate() {
        let su = stages[o.cell.0 as usize];
        let s = if sigma_out == su {
            remap[&o]
        } else {
            tap_signal[&(o, sigma_out)]
        };
        out.add_output(net.output_name(k).to_string(), s);
    }

    Ok(TimedNetwork {
        network: out,
        stages: out_stages,
        num_phases: n,
        output_stage: sigma_out,
    })
}

/// The engine-backed emission pass: materializes a [`TimedNetwork`] from
/// already-resolved state — stages, per-T1 arrival slots and per-pin chain
/// plans (CSR over the view's pin order). No demands are re-derived and no
/// hash map is touched: the driver remap is a flat `cell × port` table and
/// chain taps resolve by binary search in the pin's sorted chain slice.
///
/// Bit-identical to [`insert_dffs_reference`] by construction: same
/// topological walk, same chain stages (both come from
/// [`plan_chain`]), same tap-selection rule ([`tap_for_plain`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_planned(
    net: &Network,
    view: &NetView,
    stages: &[u32],
    sigma_out: u32,
    n: u8,
    t1_ordinal: &[u32],
    t1_arrival: &[[u32; 3]],
    chain_offsets: &[u32],
    chain_stages: &[u32],
) -> TimedNetwork {
    let nn = u32::from(n);
    let undef = Signal::from_cell(CellId(u32::MAX));
    // old pin (flat cell × port) → new signal of the driver itself.
    let mut remap: Vec<Signal> = vec![undef; net.num_cells() * T1_NUM_PORTS];
    // new signal per chain element, parallel to `chain_stages`.
    let mut tap_sig: Vec<Signal> = vec![undef; chain_stages.len()];

    let mut out = Network::new(net.name().to_string());
    let mut out_stages: Vec<u32> = Vec::with_capacity(net.num_cells() + chain_stages.len());
    let mut inputs_done = 0usize;
    let mut fan_buf: Vec<Signal> = Vec::with_capacity(3);

    let chain_of = |pi: usize| -> (usize, &[u32]) {
        let off = chain_offsets[pi] as usize;
        (off, &chain_stages[off..chain_offsets[pi + 1] as usize])
    };
    // Resolve the new-network signal a plain (window-tapping) sink at
    // `sink_stage` should read for old fanin `f`.
    let resolve_plain =
        |f: Signal, sink_stage: u32, remap: &[Signal], tap_sig: &[Signal]| -> Signal {
            let su = stages[f.cell.0 as usize];
            let pi = view.pin_lookup(f).expect("read pins are in the view");
            let (off, chain) = chain_of(pi);
            match tap_for_plain(su, chain, sink_stage, nn) {
                None => remap[flat_pin(f)],
                Some(t) => {
                    let j = chain.binary_search(&t).expect("tap stage is in the plan");
                    tap_sig[off + j]
                }
            }
        };

    for &id in &view.order {
        let kind = net.kind(id);
        let my_stage = stages[id.0 as usize];
        let new_sig = match kind {
            CellKind::Input => {
                let k = inputs_done;
                inputs_done += 1;
                let s = out.add_input(net.input_name(k).to_string());
                out_stages.push(0);
                s
            }
            CellKind::Gate(g) => {
                fan_buf.clear();
                for &f in net.fanins(id) {
                    fan_buf.push(resolve_plain(f, my_stage, &remap, &tap_sig));
                }
                let s = out.add_gate(g, &fan_buf);
                out_stages.push(my_stage);
                s
            }
            CellKind::T1 { used_ports } => {
                let arr = t1_arrival[t1_ordinal[id.0 as usize] as usize];
                fan_buf.clear();
                for (k, &f) in net.fanins(id).iter().enumerate() {
                    let a = arr[k];
                    let su = stages[f.cell.0 as usize];
                    fan_buf.push(if a == su {
                        remap[flat_pin(f)]
                    } else {
                        let pi = view.pin_lookup(f).expect("read pins are in the view");
                        let (off, chain) = chain_of(pi);
                        let j = chain
                            .binary_search(&a)
                            .expect("exact arrival tap is in the plan");
                        tap_sig[off + j]
                    });
                }
                let new_id = out.add_t1(used_ports, &fan_buf);
                out_stages.push(my_stage);
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        remap[flat_pin(Signal::t1(id, port))] = Signal::t1(new_id, port);
                    }
                }
                Signal::from_cell(new_id)
            }
            CellKind::Dff => {
                let f = net.fanins(id)[0];
                let s = out.add_dff(resolve_plain(f, my_stage, &remap, &tap_sig));
                out_stages.push(my_stage);
                s
            }
        };
        if !matches!(kind, CellKind::T1 { .. }) {
            remap[flat_pin(Signal::from_cell(id))] = new_sig;
        }
        // Materialize this cell's chains now that the cell exists.
        for port in 0..kind.num_ports() {
            let pin = Signal {
                cell: id,
                port: port as u8,
            };
            let Some(pi) = view.pin_lookup(pin) else {
                continue;
            };
            let (off, chain) = chain_of(pi);
            let mut prev = remap[flat_pin(pin)];
            for (j, &t) in chain.iter().enumerate() {
                let d = out.add_dff(prev);
                out_stages.push(t);
                tap_sig[off + j] = d;
                prev = d;
            }
        }
    }

    for (k, &o) in net.outputs().iter().enumerate() {
        let su = stages[o.cell.0 as usize];
        let s = if sigma_out == su {
            remap[flat_pin(o)]
        } else {
            let pi = view.pin_lookup(o).expect("output pins are in the view");
            let (off, chain) = chain_of(pi);
            let j = chain
                .binary_search(&sigma_out)
                .expect("output tap is in the plan");
            tap_sig[off + j]
        };
        out.add_output(net.output_name(k).to_string(), s);
    }

    TimedNetwork {
        network: out,
        stages: out_stages,
        num_phases: n,
        output_stage: sigma_out,
    }
}
