//! The incremental timing engine shared by phase assignment and DFF
//! insertion.
//!
//! Before this module existed, the two back stages of the flow were disjoint
//! layers that computed the same chain demands twice: the phase-assignment
//! descent counted chain DFFs through [`chain_cost_sorted`] inside
//! its pin cost, and DFF insertion then re-derived every demand from the
//! network and materialized it with [`plan_chain`]. A
//! [`TimingEngine`] owns that shared state once:
//!
//! * the **stage vector** `σ` and the common primary-output stage,
//! * the **σ-histogram** over primary-output drivers (`OutputTracker`),
//!   so a candidate's `σ_out` is O(1),
//! * the resolved **T1 arrival slots** per T1 cell (kept consistent with the
//!   stage vector at all times) backed by an open-addressed window-relative
//!   **arrival memo** — the same reduction as
//!   [`ArrivalCache`], without per-probe
//!   `SipHash`/`RefCell` overhead,
//! * the **per-pin chain demands** implied by stages + arrivals, and the
//!   memoized [`plan_chain`] results the emission pass consumes.
//!
//! # Incremental invalidation rule
//!
//! A candidate move of cell `c` to stage `s` can change the cost of exactly
//! these chains: the pins `c` drives, the pins feeding `c`, and the fanin
//! pins of every T1 cell adjacent to `c` (whose arrival solve the move
//! perturbs — including `c` itself when it is a T1). That pin list and the
//! list of touched T1 cells are precomputed per cell in CSR form
//! (`DescentIndex`); a candidate is evaluated by re-costing only those
//! pins, reading arrivals of *touched* T1 cells from a per-candidate scratch
//! and of untouched ones from the engine state. A `σ_out` change
//! additionally re-costs the primary-output pins (delta against their cached
//! incumbent cost). No candidate ever rescans the whole netlist.
//!
//! The descent itself — pass order, candidate window, tie-breaking,
//! acceptance rule — is *semantically identical* to the executable
//! specification [`assign_phases_reference`](crate::phase::assign_phases_reference);
//! `tests/differential_mapping.rs` asserts bit-identical
//! [`StageAssignment`]s and [`TimedNetwork`]s across every benchmark
//! generator.
//!
//! # Deterministic multi-restart
//!
//! [`TimingEngine::optimize`] runs the descent from ASAP (restart 0) plus
//! `restarts − 1` deterministically perturbed ASAP seeds (restart `r` jitters
//! each clocked cell's ASAP stage by an xorshift stream seeded by `r` alone),
//! and keeps the state with the lexicographically smallest
//! `(total cost, restart index)`. Restart results are independent of the
//! worker partition, so the fan-out over
//! [`sfq_netlist::par::workers`] under `--features parallel` is bit-identical
//! to the sequential loop — and restart count 1 is bit-identical to the
//! single-descent reference.

use crate::chains::{chain_cost_sorted, plan_chain, ChainDemand};
use crate::dff::emit_planned;
use crate::phase::{
    arrival_key, asap_stages, build_view, clocked_lower_bound, exact_assign, max_output_stage,
    pack_arrival_key, solve_arrivals, solve_arrivals_rel, ArrivalCache, NetView, OutputTracker,
    PhaseEngine, PhaseError, StageAssignment, AUTO_NODE_LIMIT, EXACT_NODE_LIMIT,
};
use crate::timed::TimedNetwork;
use sfq_netlist::{CellId, CellKind, Network, Signal};

// ======================================================================
// Window-relative arrival memo (open addressing)
// ======================================================================

/// Open-addressed memo of the window-relative arrival solve, keyed exactly
/// like [`ArrivalCache`] (`(mₖ, capₖ)₍₀‥₂₎, n`
/// packed into a `u64`) but probed with one multiply hash instead of
/// `SipHash` — the descent performs one lookup per touched T1 cell per
/// candidate, making this the hottest map in the flow.
struct ArrivalMemo {
    /// Packed keys; 0 marks an empty slot (valid: every real key carries
    /// `n ≥ 1` in bits 48..56).
    keys: Vec<u64>,
    /// Relative solutions, parallel to `keys`.
    vals: Vec<Option<[u8; 3]>>,
    len: usize,
}

impl ArrivalMemo {
    fn new() -> Self {
        ArrivalMemo {
            keys: vec![0; 1024],
            vals: vec![None; 1024],
            len: 0,
        }
    }

    #[inline]
    fn slot(keys: &[u64], key: u64) -> usize {
        let mask = keys.len() - 1;
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            let k = keys[i];
            if k == key || k == 0 {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let mut keys = vec![0u64; new_cap];
        let mut vals = vec![None; new_cap];
        for (k, v) in self.keys.iter().zip(&self.vals) {
            if *k != 0 {
                let i = Self::slot(&keys, *k);
                keys[i] = *k;
                vals[i] = *v;
            }
        }
        self.keys = keys;
        self.vals = vals;
    }

    /// Memoized [`solve_arrivals`]; bit-identical to the unmemoized solve.
    #[inline]
    fn solve(&mut self, fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
        if n >= 256 {
            // Byte-packed key components require n ≤ 255 (every in-tree
            // phase count comes from a u8); skip the memo beyond that —
            // at n = 256 the packed phase byte would be 0, colliding with
            // the empty-slot marker.
            return solve_arrivals(fanin_stages, sigma_j, n);
        }
        let (m, cap) = arrival_key(fanin_stages, sigma_j, n)?;
        let key = pack_arrival_key(m, cap, n);
        let i = Self::slot(&self.keys, key);
        let rel = if self.keys[i] == key {
            self.vals[i]
        } else {
            let v = solve_arrivals_rel(m, cap);
            self.keys[i] = key;
            self.vals[i] = v;
            self.len += 1;
            if self.len * 4 > self.keys.len() * 3 {
                self.grow();
            }
            v
        };
        let r = rel?;
        Some([
            sigma_j - u32::from(r[0]),
            sigma_j - u32::from(r[1]),
            sigma_j - u32::from(r[2]),
        ])
    }
}

// ======================================================================
// Structural (stage-independent) descent index
// ======================================================================

/// Per-cell CSR lists built once per engine: the affected-pin list (same
/// contents as the reference descent's `AffectedIndex`) plus the deduplicated
/// list of *touched* T1 cells — the T1 cells whose arrival solve a move of
/// this cell perturbs. Both are keyed by the moving cell.
struct DescentIndex {
    pin_offsets: Vec<u32>,
    pins: Vec<u32>,
    t1_offsets: Vec<u32>,
    /// T1 ordinals (indices into `view.t1_cells`), not cell ids.
    t1s: Vec<u32>,
}

impl DescentIndex {
    fn build(net: &Network, view: &NetView, t1_ordinal: &[u32]) -> Self {
        let mut pin_offsets = Vec::with_capacity(net.num_cells() + 1);
        let mut pins: Vec<u32> = Vec::new();
        let mut t1_offsets = Vec::with_capacity(net.num_cells() + 1);
        let mut t1s: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut t1_scratch: Vec<u32> = Vec::new();
        pin_offsets.push(0);
        t1_offsets.push(0);
        for id in net.cell_ids() {
            let kind = net.kind(id);
            if kind.is_clocked() {
                scratch.clear();
                t1_scratch.clear();
                let add_pin = |s: Signal, out: &mut Vec<u32>| {
                    if let Some(pi) = view.pin_lookup(s) {
                        out.push(pi as u32);
                    }
                };
                for port in 0..kind.num_ports() {
                    let pin = Signal {
                        cell: id,
                        port: port as u8,
                    };
                    add_pin(pin, &mut scratch);
                    if let Some(pi) = view.pin_lookup(pin) {
                        for &(t1, _) in &view.pins[pi].1.t1 {
                            t1_scratch.push(t1_ordinal[t1.0 as usize]);
                        }
                    }
                }
                for &fi in net.fanins(id) {
                    add_pin(fi, &mut scratch);
                }
                if matches!(kind, CellKind::T1 { .. }) {
                    t1_scratch.push(t1_ordinal[id.0 as usize]);
                }
                t1_scratch.sort_unstable();
                t1_scratch.dedup();
                for &ti in &t1_scratch {
                    let t1 = view.t1_cells[ti as usize];
                    for &fi in net.fanins(t1) {
                        add_pin(fi, &mut scratch);
                    }
                }
                scratch.sort_unstable();
                scratch.dedup();
                pins.extend_from_slice(&scratch);
                t1s.extend_from_slice(&t1_scratch);
            }
            pin_offsets.push(pins.len() as u32);
            t1_offsets.push(t1s.len() as u32);
        }
        DescentIndex {
            pin_offsets,
            pins,
            t1_offsets,
            t1s,
        }
    }

    #[inline]
    fn pins_of(&self, id: CellId) -> &[u32] {
        let i = id.0 as usize;
        &self.pins[self.pin_offsets[i] as usize..self.pin_offsets[i + 1] as usize]
    }

    #[inline]
    fn t1s_of(&self, id: CellId) -> &[u32] {
        let i = id.0 as usize;
        &self.t1s[self.t1_offsets[i] as usize..self.t1_offsets[i + 1] as usize]
    }
}

// ======================================================================
// Engine core (immutable per subject) and state (one per restart)
// ======================================================================

/// Structural data shared by every descent restart: the subject network,
/// its pin/sink view, the T1 ordinal map, the PO pin list, and the lazily
/// built [`DescentIndex`].
struct EngineCore<'a> {
    net: &'a Network,
    view: NetView,
    n: u32,
    n_u8: u8,
    /// `cell → index into view.t1_cells` (`u32::MAX` for non-T1 cells).
    t1_ordinal: Vec<u32>,
    /// Pin indices with at least one primary-output sink.
    po_pins: Vec<u32>,
    /// Built on first descent; restarts share it immutably.
    index: Option<DescentIndex>,
}

/// The mutable timing state: one per restart, swapped into the engine when
/// a restart wins.
struct EngineState {
    stages: Vec<u32>,
    output_stage: u32,
    /// Arrival slots per T1 ordinal; always consistent with `stages`.
    t1_arrival: Vec<[u32; 3]>,
    memo: ArrivalMemo,
    /// Reusable exact-tap scratch for pin costing.
    taps: Vec<u32>,
    /// Reusable candidate-stage scratch for the descent.
    cands: Vec<u32>,
    /// Per-candidate arrival scratch, by T1 ordinal, validated by stamp.
    cand_arr: Vec<[u32; 3]>,
    cand_ok: Vec<bool>,
    cand_stamp: Vec<u64>,
    cand_gen: u64,
}

impl EngineState {
    /// Builds a state from a stage vector, resolving every T1 arrival.
    ///
    /// `output_stage`: `None` derives the maximum primary-output driver
    /// stage (what the descent maintains); `Some` honors an externally
    /// chosen common output stage (MILP solutions, user assignments).
    fn new(
        core: &EngineCore<'_>,
        stages: Vec<u32>,
        output_stage: Option<u32>,
    ) -> Result<EngineState, PhaseError> {
        assert_eq!(
            stages.len(),
            core.net.num_cells(),
            "one stage per cell of the subject network"
        );
        let mut memo = ArrivalMemo::new();
        let mut t1_arrival = Vec::with_capacity(core.view.t1_cells.len());
        for &t1 in &core.view.t1_cells {
            let f = core.net.fanins(t1);
            let fs = [
                stages[f[0].cell.0 as usize],
                stages[f[1].cell.0 as usize],
                stages[f[2].cell.0 as usize],
            ];
            let arr = memo
                .solve(fs, stages[t1.0 as usize], core.n)
                .ok_or(PhaseError::TooFewPhasesForT1 { phases: core.n_u8 })?;
            t1_arrival.push(arr);
        }
        let output_stage = output_stage.unwrap_or_else(|| max_output_stage(core.net, &stages));
        let n_t1 = core.view.t1_cells.len();
        Ok(EngineState {
            stages,
            output_stage,
            t1_arrival,
            memo,
            taps: Vec::new(),
            cands: Vec::new(),
            cand_arr: vec![[0; 3]; n_t1],
            cand_ok: vec![false; n_t1],
            cand_stamp: vec![0; n_t1],
            cand_gen: 0,
        })
    }
}

/// Chain DFF count of pin `pi` under the state's stages/arrivals — the same
/// quantity as `CostModel::pin_cost`, with arrivals read from the engine's
/// resolved per-T1 array instead of re-solved per sink.
#[inline]
fn state_pin_cost(
    core: &EngineCore<'_>,
    stages: &[u32],
    output_stage: u32,
    t1_arrival: &[[u32; 3]],
    taps: &mut Vec<u32>,
    pi: usize,
) -> usize {
    let (pin, sinks) = &core.view.pins[pi];
    let su = stages[pin.cell.0 as usize];
    let mut max_plain: Option<u32> = None;
    for &v in &sinks.plain {
        let s = stages[v.0 as usize];
        if max_plain.is_none_or(|m| s > m) {
            max_plain = Some(s);
        }
    }
    taps.clear();
    for &(t1, k) in &sinks.t1 {
        let a = t1_arrival[core.t1_ordinal[t1.0 as usize] as usize][k];
        if a > su {
            taps.push(a);
        }
    }
    if sinks.outputs > 0 && output_stage > su {
        taps.push(output_stage);
    }
    taps.sort_unstable();
    taps.dedup();
    chain_cost_sorted(su, taps, max_plain, core.n)
}

/// Candidate-probe variant of [`state_pin_cost`]: arrivals of T1 cells
/// stamped in the current candidate generation come from the candidate
/// scratch (`None` cost if that solve was infeasible); everything else
/// reads the committed state.
#[inline]
#[allow(clippy::too_many_arguments)]
fn probe_pin_cost(
    core: &EngineCore<'_>,
    stages: &[u32],
    output_stage: u32,
    t1_arrival: &[[u32; 3]],
    cand_arr: &[[u32; 3]],
    cand_ok: &[bool],
    cand_stamp: &[u64],
    cand_gen: u64,
    taps: &mut Vec<u32>,
    pi: usize,
) -> Option<usize> {
    let (pin, sinks) = &core.view.pins[pi];
    let su = stages[pin.cell.0 as usize];
    let mut max_plain: Option<u32> = None;
    for &v in &sinks.plain {
        let s = stages[v.0 as usize];
        if max_plain.is_none_or(|m| s > m) {
            max_plain = Some(s);
        }
    }
    taps.clear();
    for &(t1, k) in &sinks.t1 {
        let ti = core.t1_ordinal[t1.0 as usize] as usize;
        let arr = if cand_stamp[ti] == cand_gen {
            if !cand_ok[ti] {
                return None;
            }
            cand_arr[ti]
        } else {
            t1_arrival[ti]
        };
        if arr[k] > su {
            taps.push(arr[k]);
        }
    }
    if sinks.outputs > 0 && output_stage > su {
        taps.push(output_stage);
    }
    taps.sort_unstable();
    taps.dedup();
    Some(chain_cost_sorted(su, taps, max_plain, core.n))
}

/// Total chain cost over all pins of a state.
fn state_total_cost(core: &EngineCore<'_>, state: &mut EngineState) -> usize {
    let mut taps = std::mem::take(&mut state.taps);
    let total = (0..core.view.pins.len())
        .map(|pi| {
            state_pin_cost(
                core,
                &state.stages,
                state.output_stage,
                &state.t1_arrival,
                &mut taps,
                pi,
            )
        })
        .sum();
    state.taps = taps;
    total
}

// ======================================================================
// The descent (spec: phase::heuristic_assign / assign_phases_reference)
// ======================================================================

/// Coordinate descent to a local minimum, semantically identical to the
/// reference heuristic: same pass order, candidate windows, tie-breaking
/// and acceptance — only the cost plumbing is incremental.
fn descend(core: &EngineCore<'_>, state: &mut EngineState) {
    let net = core.net;
    let view = &core.view;
    let n = core.n;
    let index = core.index.as_ref().expect("descent index built");

    let mut tracker = OutputTracker::new(net, &state.stages);
    let mut output_stage = tracker.max;

    // Per-pin cached costs under the incumbent; PO pins revalidate lazily
    // against `out_gen` exactly like the reference.
    let mut taps = std::mem::take(&mut state.taps);
    let mut pin_cost: Vec<usize> = (0..view.pins.len())
        .map(|pi| {
            state_pin_cost(
                core,
                &state.stages,
                output_stage,
                &state.t1_arrival,
                &mut taps,
                pi,
            )
        })
        .collect();
    let mut out_gen: u32 = 0;
    let mut pin_gen: Vec<u32> = vec![0; view.pins.len()];
    let mut cands = std::mem::take(&mut state.cands);

    let max_passes = 10;
    for _pass in 0..max_passes {
        let mut improved = false;
        for &id in &view.order {
            let kind = net.kind(id);
            if !kind.is_clocked() {
                continue;
            }
            // Supervised-flow budget check; a thread-local no-op on restart
            // workers and whenever no budget is installed.
            sfq_netlist::budget::tick(1);
            let current = state.stages[id.0 as usize];
            let lo = clocked_lower_bound(net, &state.stages, id);
            let mut hi = u32::MAX;
            for port in 0..kind.num_ports() {
                let pin = Signal {
                    cell: id,
                    port: port as u8,
                };
                if let Some(pi) = view.pin_lookup(pin) {
                    let sinks = &view.pins[pi].1;
                    for &v in &sinks.plain {
                        hi = hi.min(state.stages[v.0 as usize] - 1);
                    }
                    for &(t1, _) in &sinks.t1 {
                        hi = hi.min(state.stages[t1.0 as usize] - 1);
                    }
                }
            }
            if lo > hi {
                continue;
            }
            cands.clear();
            let push_range = |cands: &mut Vec<u32>, from: u32, to: u32| {
                for s in from..=to {
                    cands.push(s);
                }
            };
            let span = 2 * n;
            push_range(&mut cands, lo, lo.saturating_add(span).min(hi));
            if hi != u32::MAX {
                push_range(&mut cands, hi.saturating_sub(span).max(lo), hi);
            }
            cands.push(current);
            cands.sort_unstable();
            cands.dedup();

            let affected = index.pins_of(id);
            let touched = index.t1s_of(id);
            let drives_output = tracker.po_count[id.0 as usize] > 0;
            let excl_out = if drives_output {
                tracker.max_excluding(id, current)
            } else {
                0
            };

            let mut base_affected = 0usize;
            for &pi in affected {
                let pi = pi as usize;
                if view.pins[pi].1.outputs > 0 && pin_gen[pi] != out_gen {
                    pin_cost[pi] = state_pin_cost(
                        core,
                        &state.stages,
                        output_stage,
                        &state.t1_arrival,
                        &mut taps,
                        pi,
                    );
                    pin_gen[pi] = out_gen;
                }
                base_affected += pin_cost[pi];
            }
            if drives_output {
                // A candidate may move σ_out; refresh every stale PO-pin
                // cache now, while `stages` still holds the incumbent.
                for &pi in &core.po_pins {
                    let pi = pi as usize;
                    if pin_gen[pi] != out_gen {
                        pin_cost[pi] = state_pin_cost(
                            core,
                            &state.stages,
                            output_stage,
                            &state.t1_arrival,
                            &mut taps,
                            pi,
                        );
                        pin_gen[pi] = out_gen;
                    }
                }
            }

            let mut best: Option<(i64, u32, u32)> = None; // (delta, stage, new σ_out)
            for &cand in &cands {
                if cand == current {
                    continue;
                }
                state.stages[id.0 as usize] = cand;
                // Re-solve the touched arrivals once per candidate; every
                // affected pin reads them from the scratch.
                state.cand_gen += 1;
                let mut feasible = true;
                for &ti in touched {
                    let ti = ti as usize;
                    let t1 = view.t1_cells[ti];
                    let tf = net.fanins(t1);
                    let fs = [
                        state.stages[tf[0].cell.0 as usize],
                        state.stages[tf[1].cell.0 as usize],
                        state.stages[tf[2].cell.0 as usize],
                    ];
                    match state.memo.solve(fs, state.stages[t1.0 as usize], n) {
                        Some(a) => {
                            state.cand_arr[ti] = a;
                            state.cand_ok[ti] = true;
                        }
                        None => {
                            state.cand_ok[ti] = false;
                            feasible = false;
                        }
                    }
                    state.cand_stamp[ti] = state.cand_gen;
                }
                if !feasible {
                    // The reference rejects this candidate at the first
                    // affected pin reading the infeasible arrival; every
                    // touched T1's fanin pins are in the affected list, so
                    // the outcome is identical.
                    continue;
                }
                let new_out = if drives_output {
                    excl_out.max(cand)
                } else {
                    output_stage
                };
                let out_changed = new_out != output_stage;
                let mut ok = true;
                let mut new_affected = 0usize;
                for &pi in affected {
                    match probe_pin_cost(
                        core,
                        &state.stages,
                        new_out,
                        &state.t1_arrival,
                        &state.cand_arr,
                        &state.cand_ok,
                        &state.cand_stamp,
                        state.cand_gen,
                        &mut taps,
                        pi as usize,
                    ) {
                        Some(c) => new_affected += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                let mut extra_delta = 0i64;
                if ok && out_changed {
                    for &pi in &core.po_pins {
                        if affected.binary_search(&pi).is_ok() {
                            continue;
                        }
                        match probe_pin_cost(
                            core,
                            &state.stages,
                            new_out,
                            &state.t1_arrival,
                            &state.cand_arr,
                            &state.cand_ok,
                            &state.cand_stamp,
                            state.cand_gen,
                            &mut taps,
                            pi as usize,
                        ) {
                            Some(c) => extra_delta += c as i64 - pin_cost[pi as usize] as i64,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    let delta = new_affected as i64 - base_affected as i64 + extra_delta;
                    let better = match best {
                        None => delta < 0,
                        Some((bd, bs, _)) => delta < bd || (delta == bd && cand < bs),
                    };
                    if better {
                        best = Some((delta, cand, new_out));
                    }
                }
            }
            state.stages[id.0 as usize] = current;
            if let Some((_, cand, new_out)) = best {
                state.stages[id.0 as usize] = cand;
                // Commit the touched arrivals for the accepted stage.
                for &ti in touched {
                    let ti = ti as usize;
                    let t1 = view.t1_cells[ti];
                    let tf = net.fanins(t1);
                    let fs = [
                        state.stages[tf[0].cell.0 as usize],
                        state.stages[tf[1].cell.0 as usize],
                        state.stages[tf[2].cell.0 as usize],
                    ];
                    state.t1_arrival[ti] = state
                        .memo
                        .solve(fs, state.stages[t1.0 as usize], n)
                        .expect("accepted move is feasible");
                }
                if drives_output {
                    tracker.move_cell(id, current, cand, new_out);
                }
                if new_out != output_stage {
                    output_stage = new_out;
                    out_gen = out_gen.wrapping_add(1);
                }
                improved = true;
                for &pi in affected {
                    let pi = pi as usize;
                    pin_cost[pi] = state_pin_cost(
                        core,
                        &state.stages,
                        output_stage,
                        &state.t1_arrival,
                        &mut taps,
                        pi,
                    );
                    pin_gen[pi] = out_gen;
                }
            }
        }
        if !improved {
            break;
        }
    }
    state.output_stage = max_output_stage(net, &state.stages);
    state.taps = taps;
    state.cands = cands;
}

// ======================================================================
// Deterministic restart perturbation
// ======================================================================

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// ASAP stages with a deterministic per-cell jitter of `0..=n` extra stages,
/// computed in topological order so every seed is feasible by construction.
/// The jitter stream depends only on the restart index — never on worker
/// count or scheduling — which is what makes the multi-restart fan-out
/// bit-identical across hosts.
fn perturbed_asap(core: &EngineCore<'_>, restart: u64) -> Vec<u32> {
    let mut rng = restart
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x51AF_8B3C_6E2D_94F7)
        | 1;
    let net = core.net;
    let mut stages = vec![0u32; net.num_cells()];
    for &id in &core.view.order {
        if !net.kind(id).is_clocked() {
            continue;
        }
        let base = clocked_lower_bound(net, &stages, id);
        let jitter = ((xorshift(&mut rng) as u128 * (core.n as u128 + 1)) >> 64) as u32;
        stages[id.0 as usize] = base + jitter;
    }
    stages
}

// ======================================================================
// Public engine
// ======================================================================

/// The shared incremental substrate of phase assignment and DFF insertion:
/// one owner for the stage vector, T1 arrivals, per-pin chain demands, the
/// σ-histogram and the memoized chain plans. See the [module docs](self)
/// for the invalidation rule and the restart determinism contract.
pub struct TimingEngine<'a> {
    core: EngineCore<'a>,
    state: EngineState,
    /// Memoized `plan_chain` results for the current state (CSR over pins),
    /// invalidated whenever the state moves.
    plans: Option<(Vec<u32>, Vec<u32>)>,
}

impl<'a> TimingEngine<'a> {
    /// Creates an engine over `net` under an `n`-phase clock, seeded with
    /// the ASAP stage assignment.
    ///
    /// # Errors
    /// [`PhaseError::ZeroPhases`] when `n == 0`,
    /// [`PhaseError::TooFewPhasesForT1`] when the network contains T1 cells
    /// and `n < 4`, [`PhaseError::BadNetwork`] when the network is cyclic or
    /// malformed.
    pub fn new(net: &'a Network, n: u8) -> Result<Self, PhaseError> {
        let core = Self::build_core(net, n)?;
        let stages = asap_stages(net, &core.view);
        let state = EngineState::new(&core, stages, None)?;
        Ok(TimingEngine {
            core,
            state,
            plans: None,
        })
    }

    /// Creates an engine directly in the state described by `assignment`
    /// (the DFF-insertion entry point — no ASAP seeding work).
    ///
    /// # Errors
    /// As [`TimingEngine::new`], plus [`PhaseError::TooFewPhasesForT1`]
    /// when a T1 arrival is infeasible under the given stages.
    pub fn with_assignment(
        net: &'a Network,
        n: u8,
        assignment: &StageAssignment,
    ) -> Result<Self, PhaseError> {
        let core = Self::build_core(net, n)?;
        let state = EngineState::new(
            &core,
            assignment.stages.clone(),
            Some(assignment.output_stage),
        )?;
        Ok(TimingEngine {
            core,
            state,
            plans: None,
        })
    }

    fn build_core(net: &'a Network, n: u8) -> Result<EngineCore<'a>, PhaseError> {
        if n == 0 {
            return Err(PhaseError::ZeroPhases);
        }
        let view = build_view(net)?;
        if !view.t1_cells.is_empty() && n < 4 {
            return Err(PhaseError::TooFewPhasesForT1 { phases: n });
        }
        let mut t1_ordinal = vec![u32::MAX; net.num_cells()];
        for (i, &t1) in view.t1_cells.iter().enumerate() {
            t1_ordinal[t1.0 as usize] = i as u32;
        }
        let po_pins: Vec<u32> = view
            .pins
            .iter()
            .enumerate()
            .filter(|(_, (_, sinks))| sinks.outputs > 0)
            .map(|(pi, _)| pi as u32)
            .collect();
        Ok(EngineCore {
            net,
            view,
            n: u32::from(n),
            n_u8: n,
            t1_ordinal,
            po_pins,
            index: None,
        })
    }

    /// Replaces the engine state with `assignment` (e.g. a MILP solution or
    /// a restored incumbent), re-resolving every T1 arrival.
    ///
    /// # Errors
    /// [`PhaseError::TooFewPhasesForT1`] when a T1 arrival is infeasible
    /// under the given stages.
    pub fn seed(&mut self, assignment: &StageAssignment) -> Result<(), PhaseError> {
        self.state = EngineState::new(
            &self.core,
            assignment.stages.clone(),
            Some(assignment.output_stage),
        )?;
        self.plans = None;
        Ok(())
    }

    fn ensure_index(&mut self) {
        if self.core.index.is_none() {
            self.core.index = Some(DescentIndex::build(
                self.core.net,
                &self.core.view,
                &self.core.t1_ordinal,
            ));
        }
    }

    /// Runs the coordinate descent from the current state to a local
    /// minimum (bit-identical to the reference heuristic when started from
    /// the ASAP seed).
    pub fn descend(&mut self) {
        self.ensure_index();
        descend(&self.core, &mut self.state);
        self.plans = None;
    }

    /// Multi-restart descent: restart 0 descends from the current state;
    /// restarts `1..restarts` descend from deterministically perturbed ASAP
    /// seeds. Keeps the state with the smallest `(total cost, restart
    /// index)`. With the `parallel` feature the extra restarts fan over
    /// [`sfq_netlist::par::workers`]; the result is bit-identical to the
    /// sequential loop for any worker count. `restarts ≤ 1` is exactly
    /// [`TimingEngine::descend`].
    pub fn optimize(&mut self, restarts: usize) {
        let r = restarts.max(1);
        if r == 1 {
            self.descend();
            return;
        }
        self.ensure_index();
        let core = &self.core;
        let state = &mut self.state;
        let run_restart = |i: u64| -> (usize, EngineState) {
            let stages = perturbed_asap(core, i);
            let mut st = EngineState::new(core, stages, None)
                .expect("perturbed ASAP seeds are feasible by construction");
            descend(core, &mut st);
            let cost = state_total_cost(core, &mut st);
            (cost, st)
        };
        let extra = (r - 1) as u64;
        let workers = sfq_netlist::par::workers().min(extra as usize);
        let mut results: Vec<(usize, EngineState)> = Vec::with_capacity(extra as usize);
        if workers > 1 {
            // Contiguous index chunks per worker, concatenated in chunk
            // order: the merge sees restarts in index order regardless of
            // the partition. Restart 0 (the unperturbed descent of the
            // current state) runs on this thread, overlapped with the
            // fan-out rather than serialized ahead of it.
            let chunk = (extra as usize).div_ceil(workers) as u64;
            let bounds: Vec<(u64, u64)> = (0..workers as u64)
                .map(|w| (1 + w * chunk, (1 + (w + 1) * chunk).min(extra + 1)))
                .filter(|(lo, hi)| lo < hi)
                .collect();
            let parts: Vec<Vec<(usize, EngineState)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .iter()
                    .map(|&(lo, hi)| {
                        let run = &run_restart;
                        scope.spawn(move || (lo..hi).map(run).collect::<Vec<_>>())
                    })
                    .collect();
                descend(core, state);
                handles
                    .into_iter()
                    // Preserve worker panic payloads for the supervisor.
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            });
            for part in parts {
                results.extend(part);
            }
        } else {
            descend(core, state);
            for i in 1..=extra {
                results.push(run_restart(i));
            }
        }
        // Best by (cost, restart index); restart 0 (the unperturbed
        // descent, now in `self.state`) wins all ties.
        let mut best_cost = state_total_cost(core, state);
        let mut winner: Option<EngineState> = None;
        for (cost, st) in results {
            if cost < best_cost {
                best_cost = cost;
                winner = Some(st);
            }
        }
        if let Some(st) = winner {
            self.state = st;
        }
        self.plans = None;
    }

    /// Runs the requested phase-assignment mode on the engine and leaves
    /// the winning state loaded (so [`TimingEngine::emit`] consumes it
    /// without re-deriving anything).
    ///
    /// `Exact` and the exact half of `Auto` solve the MILP warm-started
    /// from the engine's single-restart descent incumbent, then seed the
    /// engine with the MILP solution; `restarts` applies to the heuristic
    /// paths only.
    ///
    /// # Errors
    /// [`PhaseError::Milp`] when the exact engine fails.
    pub fn assign(
        &mut self,
        mode: PhaseEngine,
        restarts: usize,
    ) -> Result<StageAssignment, PhaseError> {
        match mode {
            PhaseEngine::Heuristic => {
                self.optimize(restarts);
                Ok(self.assignment())
            }
            PhaseEngine::Exact => self.exact(EXACT_NODE_LIMIT),
            PhaseEngine::Auto => {
                let clocked = self
                    .core
                    .net
                    .cell_ids()
                    .filter(|&c| self.core.net.kind(c).is_clocked())
                    .count();
                if clocked <= 40 && self.core.view.t1_cells.len() <= 4 {
                    self.exact(AUTO_NODE_LIMIT)
                } else {
                    self.optimize(restarts);
                    Ok(self.assignment())
                }
            }
        }
    }

    /// Exact MILP refinement: descend for the warm-start incumbent, solve,
    /// and reload the engine state from the solution.
    fn exact(&mut self, node_limit: usize) -> Result<StageAssignment, PhaseError> {
        self.descend();
        let seed = self.assignment();
        let cache = ArrivalCache::new();
        let asg = exact_assign(
            self.core.net,
            &self.core.view,
            self.core.n,
            node_limit,
            &cache,
            seed,
        )?;
        self.seed(&asg)?;
        Ok(asg)
    }

    /// Total chain-DFF cost of the current state (the quantity DFF
    /// insertion will materialize).
    pub fn total_cost(&mut self) -> usize {
        state_total_cost(&self.core, &mut self.state)
    }

    /// The current stage assignment.
    pub fn assignment(&self) -> StageAssignment {
        StageAssignment {
            stages: self.state.stages.clone(),
            output_stage: self.state.output_stage,
        }
    }

    /// Materializes (and memoizes) the per-pin chain plans of the current
    /// state: for every driven pin, the sorted DFF stages of its shared
    /// chain — exactly what [`plan_chain`] returns for the pin's
    /// demand.
    fn ensure_plans(&mut self) {
        if self.plans.is_some() {
            return;
        }
        let core = &self.core;
        let state = &self.state;
        let mut offsets: Vec<u32> = Vec::with_capacity(core.view.pins.len() + 1);
        let mut chain_stages: Vec<u32> = Vec::new();
        let mut demand = ChainDemand::default();
        offsets.push(0);
        for (pin, sinks) in &core.view.pins {
            let su = state.stages[pin.cell.0 as usize];
            demand.plain.clear();
            demand.exact.clear();
            for &v in &sinks.plain {
                demand.plain.push(state.stages[v.0 as usize]);
            }
            for &(t1, k) in &sinks.t1 {
                let a = state.t1_arrival[core.t1_ordinal[t1.0 as usize] as usize][k];
                if a > su {
                    demand.exact.push(a);
                }
            }
            if sinks.outputs > 0 && state.output_stage > su {
                demand.exact.push(state.output_stage);
            }
            if !demand.is_empty() {
                chain_stages.extend_from_slice(&plan_chain(su, &demand, core.n));
            }
            offsets.push(chain_stages.len() as u32);
        }
        self.plans = Some((offsets, chain_stages));
    }

    /// Emits the fully retimed [`TimedNetwork`] of the current state: a
    /// straight emission pass over the memoized chain plans — no demand
    /// re-derivation, no hashing.
    pub fn emit(&mut self) -> TimedNetwork {
        self.ensure_plans();
        let (offsets, chain_stages) = self.plans.as_ref().expect("plans just built");
        emit_planned(
            self.core.net,
            &self.core.view,
            &self.state.stages,
            self.state.output_stage,
            self.core.n_u8,
            &self.core.t1_ordinal,
            &self.state.t1_arrival,
            offsets,
            chain_stages,
        )
    }

    /// Number of T1 cells in the subject network.
    pub fn num_t1(&self) -> usize {
        self.core.view.t1_cells.len()
    }
}
