//! Fault-tolerant flow supervision: run one flow inside a bounded,
//! observable, recoverable envelope.
//!
//! This is the containment layer batch drivers (and the future `sfqt1d`
//! daemon) put between themselves and [`run_flow_on_design`]: one broken or
//! runaway design must never take down the whole run. A supervised flow
//!
//! 1. installs a cooperative **budget** ([`sfq_netlist::budget`]) for the
//!    requested [`Limits`] — a wall-clock deadline and/or a node-count
//!    ceiling, checked at cheap intervals inside cut enumeration, the
//!    detection scoring loop and the phase descent, and at every flow stage
//!    boundary;
//! 2. runs the flow under `catch_unwind`, so a panic (a flow bug, or an
//!    injected fault) is captured with its message instead of propagating;
//! 3. classifies the result as a [`FlowOutcome`]: budget unwinds become
//!    [`FlowOutcome::TimedOut`] / [`FlowOutcome::OverBudget`], other panics
//!    [`FlowOutcome::Panicked`], and ordinary results map through.
//!
//! `catch_unwind` requires an [`UnwindSafe`](std::panic::UnwindSafe)
//! closure; the flow entry points take only shared references and build all
//! mutable state internally, so a panic can never leave observable broken
//! state behind — which is exactly the justification for the
//! `AssertUnwindSafe` in [`supervise`].
//!
//! While a supervised closure runs on this thread, the default "thread
//! panicked" report is suppressed (the panic is expected and captured);
//! panics on other threads — including scoped workers inside the flow —
//! still report normally.

use crate::flow::{run_flow_on_design, FlowConfig, FlowError, FlowResult};
use sfq_netlist::budget::{self, BudgetExceeded};
use sfq_netlist::par::panic_message;
use sfq_netlist::Design;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

/// Resource limits of one supervised flow. The default has no limits: the
/// flow is still panic-isolated, just never aborted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock deadline, measured from the start of the flow.
    pub deadline: Option<Duration>,
    /// Ceiling on budget units (≈ processed nodes/candidates — see
    /// [`sfq_netlist::budget::tick`]).
    pub max_nodes: Option<u64>,
}

impl Limits {
    /// No limits: panic isolation only.
    pub const NONE: Limits = Limits {
        deadline: None,
        max_nodes: None,
    };
}

/// What happened to one supervised flow — the typed outcome batch drivers
/// consume in place of a bare `Result`.
#[derive(Debug)]
pub enum FlowOutcome {
    /// The flow finished and verified.
    Ok(Box<FlowResult>),
    /// The flow failed with a typed error (bad input, infeasible phases,
    /// failed audit…).
    Failed(FlowError),
    /// The flow panicked and was contained.
    Panicked {
        /// The panic message (payload text, or a placeholder for non-string
        /// payloads).
        message: String,
    },
    /// The flow exceeded its wall-clock deadline and was aborted.
    TimedOut,
    /// The flow exceeded its node-count ceiling and was aborted.
    OverBudget,
}

impl FlowOutcome {
    /// True for [`FlowOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, FlowOutcome::Ok(_))
    }

    /// The finished flow, if there is one.
    pub fn result(&self) -> Option<&FlowResult> {
        match self {
            FlowOutcome::Ok(res) => Some(res),
            _ => None,
        }
    }

    /// Deterministic one-line failure reason (`None` for
    /// [`FlowOutcome::Ok`]). Contains no timings or addresses, so batch
    /// rows built from it are byte-identical across runs, builds and worker
    /// counts.
    pub fn failure(&self) -> Option<String> {
        match self {
            FlowOutcome::Ok(_) => None,
            FlowOutcome::Failed(e) => Some(e.to_string()),
            FlowOutcome::Panicked { message } => Some(format!("panicked: {message}")),
            FlowOutcome::TimedOut => Some(BudgetExceeded::Deadline.to_string()),
            FlowOutcome::OverBudget => Some(BudgetExceeded::Nodes.to_string()),
        }
    }
}

thread_local! {
    /// True while [`supervise`] is executing its closure on this thread —
    /// the panic hook consults it to keep expected, captured panics quiet.
    static SUPERVISED: Cell<bool> = const { Cell::new(false) };
}

/// Wraps the default panic hook once, per process: panics raised on a
/// thread currently inside [`supervise`] are captured anyway, so their
/// default stderr report is suppressed.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPERVISED.get() {
                previous(info);
            }
        }));
    });
}

/// Marks the current thread supervised for its lifetime, restoring the
/// previous flag on drop (so nested supervision behaves).
struct SupervisedScope {
    was: bool,
}

impl SupervisedScope {
    fn enter() -> Self {
        let was = SUPERVISED.replace(true);
        SupervisedScope { was }
    }
}

impl Drop for SupervisedScope {
    fn drop(&mut self) {
        SUPERVISED.set(self.was);
    }
}

/// What happened to one supervised *task* — the type-generic sibling of
/// [`FlowOutcome`] for work that produces something other than a bare
/// [`FlowResult`] (e.g. a verification report that bundles a flow with
/// equivalence sweeps and margin analysis).
#[derive(Debug)]
pub enum TaskOutcome<T, E> {
    /// The task finished.
    Ok(Box<T>),
    /// The task failed with its typed error.
    Failed(E),
    /// The task panicked and was contained.
    Panicked {
        /// The panic message (payload text, or a placeholder for non-string
        /// payloads).
        message: String,
    },
    /// The task exceeded its wall-clock deadline and was aborted.
    TimedOut,
    /// The task exceeded its node-count ceiling and was aborted.
    OverBudget,
}

/// Runs any fallible task under the supervision envelope: budget installed
/// per `limits`, panics contained, outcome classified. The fully generic
/// entry point — [`supervise`] specializes it to flows, and batch drivers
/// use it directly for composite jobs (flow + verification).
///
/// `f` runs on the calling thread (supervision adds isolation, not
/// concurrency), so budget ticks inside the task's hot loops see the
/// installed budget.
pub fn supervise_task<T, E, F>(limits: &Limits, f: F) -> TaskOutcome<T, E>
where
    F: FnOnce() -> Result<T, E>,
{
    install_quiet_hook();
    let _budget = budget::install(limits.deadline, limits.max_nodes);
    let caught = {
        let _scope = SupervisedScope::enter();
        // AssertUnwindSafe: supervised entry points take shared references
        // and keep every piece of mutable state internal, so an unwound
        // task leaves nothing observable behind (see module docs).
        catch_unwind(AssertUnwindSafe(f))
    };
    match caught {
        Ok(Ok(result)) => TaskOutcome::Ok(Box::new(result)),
        Ok(Err(e)) => TaskOutcome::Failed(e),
        Err(payload) => match payload.downcast_ref::<BudgetExceeded>() {
            Some(BudgetExceeded::Deadline) => TaskOutcome::TimedOut,
            Some(BudgetExceeded::Nodes) => TaskOutcome::OverBudget,
            None => TaskOutcome::Panicked {
                message: panic_message(payload.as_ref()),
            },
        },
    }
}

/// Runs `f` under the supervision envelope: budget installed per `limits`,
/// panics contained, outcome classified. The flow-shaped entry point —
/// [`run_flow_supervised`] is the convenience wrapper for designs, and
/// [`supervise_task`] the generic machinery underneath.
pub fn supervise<F>(limits: &Limits, f: F) -> FlowOutcome
where
    F: FnOnce() -> Result<FlowResult, FlowError>,
{
    match supervise_task(limits, f) {
        TaskOutcome::Ok(result) => FlowOutcome::Ok(result),
        TaskOutcome::Failed(e) => FlowOutcome::Failed(e),
        TaskOutcome::Panicked { message } => FlowOutcome::Panicked { message },
        TaskOutcome::TimedOut => FlowOutcome::TimedOut,
        TaskOutcome::OverBudget => FlowOutcome::OverBudget,
    }
}

/// [`run_flow_on_design`] inside the supervision envelope — the per-design
/// entry point of `sfqt1 flow --batch` (and the daemon to come).
pub fn run_flow_supervised(design: &Design, config: &FlowConfig, limits: &Limits) -> FlowOutcome {
    supervise(limits, || run_flow_on_design(design, config))
}
