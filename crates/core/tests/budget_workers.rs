//! Node-budget determinism across worker counts: budgets are thread-local
//! and charged by the coordinating thread only (parallel workers' ticks
//! are deliberate no-ops, and the cut frontier charges its whole network
//! up front), so an `OverBudget` abort must be **identical** — same
//! outcome class, same rendered reason, same point of refusal — whether
//! the flow under supervision fans over 1, 4 or 8 workers.
//!
//! Everything lives in one test fn: the worker override is process-global,
//! and a single owner needs no locking against parallel test threads.

use sfq_core::{run_flow, supervise, FlowConfig, FlowOutcome, Limits};
use sfq_netlist::{par, Aig};

fn ripple_adder_aig(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("add{bits}"));
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let mut carry = aig.const_false();
    let mut sums = Vec::new();
    for i in 0..bits {
        let (s, c) = aig.full_adder(a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    sums.push(carry);
    aig.output_word("s", &sums);
    aig
}

#[test]
fn over_budget_outcome_is_identical_at_1_4_and_8_workers() {
    let aig = ripple_adder_aig(8);
    let config = FlowConfig::t1(4);
    let starved = Limits {
        deadline: None,
        max_nodes: Some(1),
    };
    let mut aborted_reasons = Vec::new();
    let mut clean_reports = Vec::new();
    for w in [1usize, 4, 8] {
        par::force_workers(w);
        // A one-node ceiling aborts at the first budget checkpoint.
        let aborted = supervise(&starved, || run_flow(&aig, &config));
        assert!(
            matches!(aborted, FlowOutcome::OverBudget),
            "{w} workers: {aborted:?}"
        );
        aborted_reasons.push(aborted.failure());
        // The exhausted budget must not infect the next (unlimited) run —
        // and that run's report must also be worker-count independent.
        let clean = supervise(&Limits::NONE, || run_flow(&aig, &config));
        let FlowOutcome::Ok(res) = clean else {
            panic!("{w} workers: unlimited run failed: {clean:?}");
        };
        let r = &res.report;
        clean_reports.push((
            r.t1_found,
            r.t1_used,
            r.num_gates,
            r.num_dffs,
            r.area,
            r.depth_cycles,
        ));
        par::force_workers(0);
    }
    assert_eq!(
        aborted_reasons[0], aborted_reasons[1],
        "abort reason drifts between 1 and 4 workers"
    );
    assert_eq!(
        aborted_reasons[1], aborted_reasons[2],
        "abort reason drifts between 4 and 8 workers"
    );
    assert_eq!(
        aborted_reasons[0].as_deref(),
        Some("node budget exceeded"),
        "the rendered reason is the node-budget one"
    );
    assert_eq!(
        clean_reports[0], clean_reports[1],
        "flow report drifts between 1 and 4 workers"
    );
    assert_eq!(
        clean_reports[1], clean_reports[2],
        "flow report drifts between 4 and 8 workers"
    );
}
