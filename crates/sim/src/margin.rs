//! Monte-Carlo timing-margin analysis of T1 input separation.
//!
//! The discrete multiphase model guarantees that the three fanins of every
//! T1 cell *release* at pairwise-distinct stages (paper eq. 5). On silicon,
//! stages are instants `σ · T/n` on a clock of period `T`, and every pulse
//! accumulates Gaussian timing jitter through its JTL/gate chain. Two pulses
//! nominally one stage apart can therefore still collide if the jitter is
//! comparable to the stage spacing `T/n` — and the spacing *shrinks* as the
//! phase count grows, so "more phases" trades DFFs for analog margin. This
//! module quantifies that trade, which the paper's discrete model cannot
//! express: it samples jittered arrival instants for every T1 cell and
//! reports the worst pairwise separation and the fraction of trials in which
//! some T1 cell would mis-count pulses.
//!
//! Checks per T1 cell and trial:
//!
//! * every pair of `T`-input arrivals is at least `resolution_ps` apart
//!   (closer pulses merge into one, the paper's data hazard);
//! * every arrival falls inside the accumulation window
//!   `(clock − period, clock)`, with `resolution_ps` of guard band on both
//!   ends (outside, the pulse is counted in the wrong period).
//!
//! The sampler is a deterministic xorshift* + Box–Muller transform, so every
//! report is reproducible from its seed without external dependencies.
//! Every trial draws from its **own** stream, derived from
//! `(config seed, trial index)` by a splitmix64 step — so the report is
//! identical however the trial range is partitioned, and the `parallel`
//! cargo feature can fan trials out over `std::thread::scope` workers
//! without changing a single sampled value (the registry is unreachable
//! from this build environment, so the harness uses scoped threads rather
//! than rayon). Per-trial minima are written into a preallocated slice and
//! reduced in trial order, keeping even the floating-point accumulation
//! order fixed.
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_netlist::Aig;
//! use sfq_sim::margin::{analyze_margins, MarginConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let c = aig.input("c");
//! let (s, co) = aig.full_adder(a, b, c);
//! aig.output("s", s);
//! aig.output("co", co);
//! let res = run_flow(&aig, &FlowConfig::t1(4))?;
//!
//! // 0.3 ps jitter against a 6.25 ps stage spacing: ~10σ of margin.
//! let cfg = MarginConfig { jitter_ps: 0.3, ..MarginConfig::default() };
//! let report = analyze_margins(&res.timed, &cfg);
//! assert_eq!(report.hazardous_trials, 0);
//! // At the default 1 ps the same netlist already shows a nonzero hazard
//! // tail (the separation sits ≈3σ out) — the insight this module adds.
//! # Ok(())
//! # }
//! ```

use sfq_core::TimedNetwork;
use sfq_netlist::CellKind;

/// Parameters of one Monte-Carlo margin run.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginConfig {
    /// Full clock period in picoseconds (all `n` phases fit in one period).
    pub period_ps: f64,
    /// 1-σ Gaussian jitter per pulse arrival, in picoseconds.
    pub jitter_ps: f64,
    /// Minimum separation two pulses need to be resolved as two, in
    /// picoseconds.
    pub resolution_ps: f64,
    /// Number of Monte-Carlo trials.
    pub trials: u32,
    /// RNG seed (the analysis is deterministic per seed).
    pub seed: u64,
}

impl Default for MarginConfig {
    fn default() -> Self {
        MarginConfig {
            period_ps: 25.0, // 40 GHz — mid-range RSFQ
            jitter_ps: 1.0,
            resolution_ps: 2.0,
            trials: 1000,
            seed: 0xD1CE_5EED_0BAD_F00D,
        }
    }
}

/// Outcome of a Monte-Carlo margin run.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginReport {
    /// Number of T1 cells analyzed (0 makes the run trivially clean).
    pub t1_cells: usize,
    /// Trials executed.
    pub trials: u32,
    /// Trials in which at least one T1 cell violated separation or its
    /// accumulation window.
    pub hazardous_trials: u32,
    /// The smallest pairwise `T`-input separation observed anywhere, in
    /// picoseconds (`f64::INFINITY` when no T1 cell exists).
    pub worst_separation_ps: f64,
    /// Mean over trials of each trial's minimum separation, in picoseconds.
    pub mean_min_separation_ps: f64,
    /// Nominal stage spacing `period / n`, in picoseconds.
    pub stage_spacing_ps: f64,
}

impl MarginReport {
    /// Fraction of trials that violated the pulse-counting discipline.
    pub fn hazard_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.hazardous_trials) / f64::from(self.trials)
        }
    }
}

/// Deterministic xorshift* generator feeding a Box–Muller transform.
#[derive(Debug, Clone)]
struct Gauss {
    state: u64,
    spare: Option<f64>,
}

impl Gauss {
    fn new(seed: u64) -> Self {
        Gauss {
            state: seed | 1,
            spare: None,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Standard normal sample.
    fn next_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1 = self.next_unit();
        let u2 = self.next_unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }
}

/// Derives the independent RNG stream of one trial (splitmix64 step over
/// the config seed and the trial index).
fn trial_seed(seed: u64, trial: u32) -> u64 {
    let mut x = seed ^ (u64::from(trial).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One Monte-Carlo trial: samples every T1 site once and returns
/// `(minimum pairwise separation, hazard seen)`.
fn run_trial(
    t1_sites: &[(u32, Vec<u32>)],
    spacing: f64,
    cfg: &MarginConfig,
    trial: u32,
) -> (f64, bool) {
    let mut rng = Gauss::new(trial_seed(cfg.seed, trial));
    let mut trial_min = f64::INFINITY;
    let mut trial_hazard = false;
    let mut arrivals: Vec<f64> = Vec::new();
    for (t1_stage, fanin_stages) in t1_sites {
        let clock_t = f64::from(*t1_stage) * spacing + cfg.jitter_ps * rng.next_normal();
        let window_start = clock_t - cfg.period_ps;
        arrivals.clear();
        arrivals.extend(
            fanin_stages
                .iter()
                .map(|&s| f64::from(s) * spacing + cfg.jitter_ps * rng.next_normal()),
        );
        for (k, &a) in arrivals.iter().enumerate() {
            if a <= window_start + cfg.resolution_ps || a >= clock_t - cfg.resolution_ps {
                trial_hazard = true;
            }
            for &b in &arrivals[k + 1..] {
                let sep = (a - b).abs();
                trial_min = trial_min.min(sep);
                if sep < cfg.resolution_ps {
                    trial_hazard = true;
                }
            }
        }
    }
    (trial_min, trial_hazard)
}

/// Fills `out[t]` with trial `t`'s `(min separation, hazard)` result.
#[cfg(not(feature = "parallel"))]
fn run_trials(
    t1_sites: &[(u32, Vec<u32>)],
    spacing: f64,
    cfg: &MarginConfig,
    out: &mut [(f64, bool)],
) {
    for (t, slot) in out.iter_mut().enumerate() {
        *slot = run_trial(t1_sites, spacing, cfg, t as u32);
    }
}

/// Fills `out[t]` with trial `t`'s result, fanning contiguous chunks out
/// over scoped worker threads. Every trial owns its RNG stream, so the
/// results are identical to the sequential path bit for bit.
#[cfg(feature = "parallel")]
fn run_trials(
    t1_sites: &[(u32, Vec<u32>)],
    spacing: f64,
    cfg: &MarginConfig,
    out: &mut [(f64, bool)],
) {
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(out.len().max(1));
    if workers <= 1 {
        for (t, slot) in out.iter_mut().enumerate() {
            *slot = run_trial(t1_sites, spacing, cfg, t as u32);
        }
        return;
    }
    let chunk = out.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slots) in out.chunks_mut(chunk).enumerate() {
            let base = (w * chunk) as u32;
            scope.spawn(move || {
                for (t, slot) in slots.iter_mut().enumerate() {
                    *slot = run_trial(t1_sites, spacing, cfg, base + t as u32);
                }
            });
        }
    });
}

/// Runs the Monte-Carlo margin analysis over every T1 cell of `timed`.
///
/// # Panics
/// Panics if `cfg.period_ps` is not strictly positive.
pub fn analyze_margins(timed: &TimedNetwork, cfg: &MarginConfig) -> MarginReport {
    assert!(cfg.period_ps > 0.0, "clock period must be positive");
    let n = timed.num_phases as f64;
    let spacing = cfg.period_ps / n;
    let net = &timed.network;

    // (T1 stage, [fanin release stages]) per T1 cell.
    let t1_sites: Vec<(u32, Vec<u32>)> = net
        .cell_ids()
        .filter(|&id| matches!(net.kind(id), CellKind::T1 { .. }))
        .map(|id| {
            let fanin_stages = net
                .fanins(id)
                .iter()
                .map(|f| timed.stages[f.cell.0 as usize])
                .collect();
            (timed.stages[id.0 as usize], fanin_stages)
        })
        .collect();

    let mut results = vec![(f64::INFINITY, false); cfg.trials as usize];
    run_trials(&t1_sites, spacing, cfg, &mut results);

    // Reduce in trial order: the report (including the floating-point sum)
    // is independent of how run_trials partitioned the work.
    let mut hazardous_trials = 0u32;
    let mut worst = f64::INFINITY;
    let mut sum_min = 0.0f64;
    for &(trial_min, trial_hazard) in &results {
        if trial_hazard {
            hazardous_trials += 1;
        }
        if trial_min.is_finite() {
            sum_min += trial_min;
            worst = worst.min(trial_min);
        }
    }

    let mean = if t1_sites.is_empty() || cfg.trials == 0 {
        f64::INFINITY
    } else {
        sum_min / f64::from(cfg.trials)
    };
    MarginReport {
        t1_cells: t1_sites.len(),
        trials: cfg.trials,
        hazardous_trials,
        worst_separation_ps: worst,
        mean_min_separation_ps: mean,
        stage_spacing_ps: spacing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::{run_flow, FlowConfig};
    use sfq_netlist::Aig;

    fn t1_adder(bits: usize, phases: u8) -> TimedNetwork {
        let aig = sfq_circuits_adder(bits);
        run_flow(&aig, &FlowConfig::t1(phases))
            .expect("t1 flow")
            .timed
    }

    /// Local ripple adder builder (sim must not depend on sfq-circuits).
    fn sfq_circuits_adder(bits: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a = aig.input_word("a", bits);
        let b = aig.input_word("b", bits);
        let mut carry = aig.const_false();
        let mut sums = Vec::new();
        for k in 0..bits {
            let (s, c) = aig.full_adder(a[k], b[k], carry);
            sums.push(s);
            carry = c;
        }
        sums.push(carry);
        aig.output_word("s", &sums);
        aig
    }

    #[test]
    fn zero_jitter_reports_the_nominal_spacing() {
        let timed = t1_adder(8, 4);
        let cfg = MarginConfig {
            jitter_ps: 0.0,
            trials: 10,
            ..MarginConfig::default()
        };
        let r = analyze_margins(&timed, &cfg);
        assert!(r.t1_cells > 0, "the adder commits T1 cells");
        assert_eq!(r.hazardous_trials, 0, "no jitter, no hazards");
        // Adjacent distinct stages are exactly one spacing apart.
        assert!(
            (r.worst_separation_ps - r.stage_spacing_ps).abs() < 1e-9,
            "worst separation {} vs spacing {}",
            r.worst_separation_ps,
            r.stage_spacing_ps
        );
    }

    #[test]
    fn extreme_jitter_always_hazards() {
        let timed = t1_adder(8, 4);
        let cfg = MarginConfig {
            jitter_ps: 50.0, // 2× the whole period
            trials: 50,
            ..MarginConfig::default()
        };
        let r = analyze_margins(&timed, &cfg);
        assert!(
            r.hazardous_trials > 40,
            "jitter ≫ period must break the discipline ({}/50)",
            r.hazardous_trials
        );
    }

    #[test]
    fn hazard_rate_grows_with_jitter() {
        let timed = t1_adder(8, 4);
        let rate = |j: f64| {
            let cfg = MarginConfig {
                jitter_ps: j,
                trials: 400,
                ..MarginConfig::default()
            };
            analyze_margins(&timed, &cfg).hazard_rate()
        };
        let low = rate(0.1);
        let high = rate(4.0);
        assert!(
            low < high,
            "hazard rate must grow with jitter ({low} vs {high})"
        );
        assert_eq!(rate(0.0), 0.0);
    }

    #[test]
    fn more_phases_shrink_the_analog_margin() {
        // Same period, more phases ⇒ tighter stage spacing ⇒ worse margins.
        // This is the design-space insight the discrete model cannot see.
        let r4 = analyze_margins(
            &t1_adder(8, 4),
            &MarginConfig {
                jitter_ps: 0.0,
                trials: 1,
                ..MarginConfig::default()
            },
        );
        let r8 = analyze_margins(
            &t1_adder(8, 8),
            &MarginConfig {
                jitter_ps: 0.0,
                trials: 1,
                ..MarginConfig::default()
            },
        );
        assert!(r8.stage_spacing_ps < r4.stage_spacing_ps);
        assert!(r8.worst_separation_ps <= r4.worst_separation_ps);
    }

    #[test]
    fn deterministic_per_seed() {
        let timed = t1_adder(4, 4);
        let cfg = MarginConfig {
            jitter_ps: 2.0,
            trials: 200,
            ..MarginConfig::default()
        };
        let a = analyze_margins(&timed, &cfg);
        let b = analyze_margins(&timed, &cfg);
        assert_eq!(a, b, "same seed, same report");
        let c = analyze_margins(&timed, &MarginConfig { seed: 42, ..cfg });
        assert_ne!(
            a.worst_separation_ps, c.worst_separation_ps,
            "different seed explores different samples"
        );
    }

    #[test]
    fn networks_without_t1_cells_are_trivially_clean() {
        let aig = sfq_circuits_adder(4);
        let timed = run_flow(&aig, &FlowConfig::multiphase(4))
            .expect("4φ")
            .timed;
        let r = analyze_margins(&timed, &MarginConfig::default());
        assert_eq!(r.t1_cells, 0);
        assert_eq!(r.hazardous_trials, 0);
        assert_eq!(r.worst_separation_ps, f64::INFINITY);
    }

    #[test]
    fn gaussian_sampler_is_roughly_standard_normal() {
        let mut g = Gauss::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
