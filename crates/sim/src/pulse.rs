//! Tick-accurate pulse simulation of a [`TimedNetwork`].
//!
//! Time advances in *stages* (global tick `τ`); a cell at stage `σ` fires at
//! every tick `τ ≥ σ` with `τ ≡ σ (mod n)`, consuming the pulses buffered on
//! its inputs since its previous firing and emitting result pulses that are
//! delivered to sinks instantly (interconnect delay is abstracted into the
//! stage discipline, as in the paper's model). Primary inputs release wave
//! `w`'s pulses at tick `w·n`; outputs are sampled where their drivers fire,
//! at `σ_out + w·n`.
//!
//! The simulator is deliberately strict: any double pulse on a gate input,
//! any `T`/`T` or `T`/`R` collision at a T1 cell, and any pulse surviving
//! past its lifetime turns into a [`Hazard`]. A correct flow output never
//! produces one — that is precisely the property the paper's constraints
//! (eqs. 3–5) enforce, and the test suite leans on it.

use crate::t1cell::{T1Cell, T1Input};
use sfq_core::TimedNetwork;
use sfq_netlist::{CellId, CellKind, Signal, T1Port, T1_NUM_PORTS};
use std::collections::HashMap;
use std::fmt;

/// A timing violation observed during pulse simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// A second pulse arrived on the same gate input before the cell fired.
    DoublePulse {
        /// The receiving cell.
        cell: CellId,
        /// Which of its fanins double-pulsed.
        fanin: usize,
        /// Simulation tick of the second pulse.
        tick: u64,
    },
    /// Two pulses reached a T1 `T` input at the same tick (merger collision).
    T1Collision {
        /// The T1 cell.
        cell: CellId,
        /// Tick of the collision.
        tick: u64,
    },
    /// A data pulse hit a T1 cell at its own clock tick.
    T1DataOnClock {
        /// The T1 cell.
        cell: CellId,
        /// Tick of the ill-timed pulse.
        tick: u64,
    },
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::DoublePulse { cell, fanin, tick } => {
                write!(
                    f,
                    "double pulse on input {fanin} of c{} at tick {tick}",
                    cell.0
                )
            }
            Hazard::T1Collision { cell, tick } => {
                write!(
                    f,
                    "T-input pulse collision at T1 c{} at tick {tick}",
                    cell.0
                )
            }
            Hazard::T1DataOnClock { cell, tick } => {
                write!(
                    f,
                    "data pulse during clock tick at T1 c{} at tick {tick}",
                    cell.0
                )
            }
        }
    }
}

/// Simulation failure: the run never started (malformed stimulus) or one or
/// more hazards fired while it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// One or more timing hazards fired; all hazards recorded before the
    /// simulator gave up.
    Hazards(Vec<Hazard>),
    /// A stimulus wave carries a different number of values than the
    /// network has primary inputs, so the run was rejected up front.
    WaveArity {
        /// Index of the offending wave.
        wave: usize,
        /// Values the wave carries.
        got: usize,
        /// Primary inputs the network has.
        expected: usize,
    },
}

impl SimError {
    /// The recorded hazards (empty for non-hazard failures).
    pub fn hazards(&self) -> &[Hazard] {
        match self {
            SimError::Hazards(hazards) => hazards,
            SimError::WaveArity { .. } => &[],
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hazards(hazards) => write!(
                f,
                "pulse simulation detected {} hazard(s); first: {}",
                hazards.len(),
                hazards[0]
            ),
            SimError::WaveArity {
                wave,
                got,
                expected,
            } => write!(
                f,
                "wave {wave} carries {got} value(s), but the design has {expected} input(s)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone)]
enum CellState {
    Input,
    Gate {
        buf: [bool; 2],
        pending: [bool; 2],
    },
    T1 {
        cell: T1Cell,
        c_latch: bool,
        q_latch: bool,
    },
    Dff {
        buf: bool,
        pending: bool,
    },
}

/// A reusable pulse simulator for one timed network.
#[derive(Debug)]
pub struct PulseSim<'a> {
    timed: &'a TimedNetwork,
    /// Cells bucketed by firing phase.
    phase_buckets: Vec<Vec<CellId>>,
    /// Sinks per pin: (consumer cell, fanin index).
    sinks: HashMap<Signal, Vec<(CellId, usize)>>,
    input_index: HashMap<CellId, usize>,
}

impl<'a> PulseSim<'a> {
    /// Prepares the firing schedule for `timed`.
    pub fn new(timed: &'a TimedNetwork) -> Self {
        let n = timed.num_phases as u32;
        let net = &timed.network;
        let mut phase_buckets = vec![Vec::new(); n as usize];
        for id in net.cell_ids() {
            if net.kind(id).is_clocked() {
                phase_buckets[(timed.stages[id.0 as usize] % n) as usize].push(id);
            }
        }
        let mut sinks: HashMap<Signal, Vec<(CellId, usize)>> = HashMap::new();
        for id in net.cell_ids() {
            for (k, &f) in net.fanins(id).iter().enumerate() {
                sinks.entry(f).or_default().push((id, k));
            }
        }
        let input_index = net
            .inputs()
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, k))
            .collect();
        PulseSim {
            timed,
            phase_buckets,
            sinks,
            input_index,
        }
    }

    /// Streams `waves` through the pipeline; `waves[w][i]` is input `i` of
    /// wave `w`. Returns one output vector per wave.
    ///
    /// # Errors
    /// [`SimError::WaveArity`] if a wave's length differs from the input
    /// count; [`SimError::Hazards`] listing every hazard when the timing
    /// discipline is violated (a flow bug — audited networks simulate
    /// cleanly).
    pub fn run(&self, waves: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, SimError> {
        self.run_inner(waves, None)
    }

    /// Like [`run`](Self::run), but also records every pulse on every pin —
    /// the raw material for waveform viewers (see [`crate::vcd`]).
    ///
    /// # Errors
    /// See [`run`](Self::run).
    pub fn run_traced(
        &self,
        waves: &[Vec<bool>],
    ) -> Result<(Vec<Vec<bool>>, PulseTrace), SimError> {
        let mut trace = PulseTrace {
            last_tick: 0,
            events: Vec::new(),
        };
        let outputs = self.run_inner(waves, Some(&mut trace))?;
        Ok((outputs, trace))
    }

    fn run_inner(
        &self,
        waves: &[Vec<bool>],
        mut trace: Option<&mut PulseTrace>,
    ) -> Result<Vec<Vec<bool>>, SimError> {
        let timed = self.timed;
        let net = &timed.network;
        let n = timed.num_phases as u64;
        let w_count = waves.len() as u64;
        for (wave, w) in waves.iter().enumerate() {
            if w.len() != net.num_inputs() {
                return Err(SimError::WaveArity {
                    wave,
                    got: w.len(),
                    expected: net.num_inputs(),
                });
            }
        }

        let mut state: Vec<CellState> = net
            .cell_ids()
            .map(|id| match net.kind(id) {
                CellKind::Input => CellState::Input,
                CellKind::Gate(_) => CellState::Gate {
                    buf: [false; 2],
                    pending: [false; 2],
                },
                CellKind::T1 { .. } => CellState::T1 {
                    cell: T1Cell::new(),
                    c_latch: false,
                    q_latch: false,
                },
                CellKind::Dff => CellState::Dff {
                    buf: false,
                    pending: false,
                },
            })
            .collect();
        // T pulses delivered to a T1 in the current tick (collision check).
        let mut t1_hits_this_tick: HashMap<CellId, u64> = HashMap::new();
        let mut hazards: Vec<Hazard> = Vec::new();
        let mut outputs = vec![vec![false; net.num_outputs()]; waves.len()];
        // Pulses emitted in the current tick, per pin (for PO sampling).
        let mut emitted: HashMap<Signal, bool> = HashMap::new();

        let last_tick = timed.output_stage as u64 + w_count.saturating_sub(1) * n;
        for tick in 0..=last_tick {
            emitted.clear();
            t1_hits_this_tick.clear();
            let phase = (tick % n) as usize;
            // Deliveries are processed immediately inside fire(); firing
            // order within a tick follows increasing stage so producers at
            // this tick never race their same-tick consumers (all spans ≥ 1).
            let mut firing: Vec<CellId> = self.phase_buckets[phase]
                .iter()
                .copied()
                .filter(|&id| timed.stages[id.0 as usize] as u64 <= tick)
                .collect();
            firing.sort_by_key(|&id| timed.stages[id.0 as usize]);

            // Primary inputs fire at phase 0 with their wave's data.
            if phase == 0 {
                let wave = tick / n;
                if wave < w_count {
                    for (&cell, &k) in &self.input_index {
                        if waves[wave as usize][k] {
                            self.emit(
                                Signal::from_cell(cell),
                                tick,
                                &mut state,
                                &mut emitted,
                                &mut t1_hits_this_tick,
                                &mut hazards,
                            );
                        }
                    }
                }
            }

            for id in firing {
                self.fire(
                    id,
                    tick,
                    &mut state,
                    &mut emitted,
                    &mut t1_hits_this_tick,
                    &mut hazards,
                );
            }

            // Sample primary outputs.
            if tick >= timed.output_stage as u64
                && (tick - timed.output_stage as u64).is_multiple_of(n)
            {
                let wave = (tick - timed.output_stage as u64) / n;
                if wave < w_count {
                    for (k, &o) in net.outputs().iter().enumerate() {
                        outputs[wave as usize][k] = *emitted.get(&o).unwrap_or(&false);
                    }
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.last_tick = last_tick;
                for (&pin, &fired) in emitted.iter() {
                    if fired {
                        t.events.push((tick, pin));
                    }
                }
            }
            if hazards.len() > 32 {
                break; // enough evidence; stop collecting
            }
        }
        if let Some(t) = trace {
            t.events.sort_unstable();
        }
        if hazards.is_empty() {
            Ok(outputs)
        } else {
            Err(SimError::Hazards(hazards))
        }
    }

    /// Fires one clocked cell: consume buffered inputs, emit results.
    fn fire(
        &self,
        id: CellId,
        tick: u64,
        state: &mut [CellState],
        emitted: &mut HashMap<Signal, bool>,
        t1_hits: &mut HashMap<CellId, u64>,
        hazards: &mut Vec<Hazard>,
    ) {
        let net = &self.timed.network;
        match net.kind(id) {
            CellKind::Input => {}
            CellKind::Gate(g) => {
                let (a, b) = match &mut state[id.0 as usize] {
                    CellState::Gate { buf, pending } => {
                        let v = (buf[0], buf[1]);
                        *buf = [pending[0], pending[1]];
                        *pending = [false, false];
                        v
                    }
                    _ => unreachable!("gate state"),
                };
                if g.eval(a, b) {
                    self.emit(
                        Signal::from_cell(id),
                        tick,
                        state,
                        emitted,
                        t1_hits,
                        hazards,
                    );
                }
            }
            CellKind::Dff => {
                let v = match &mut state[id.0 as usize] {
                    CellState::Dff { buf, pending } => {
                        let v = *buf;
                        *buf = *pending;
                        *pending = false;
                        v
                    }
                    _ => unreachable!("dff state"),
                };
                if v {
                    self.emit(
                        Signal::from_cell(id),
                        tick,
                        state,
                        emitted,
                        t1_hits,
                        hazards,
                    );
                }
            }
            CellKind::T1 { used_ports } => {
                let (s, c, q) = match &mut state[id.0 as usize] {
                    CellState::T1 {
                        cell,
                        c_latch,
                        q_latch,
                    } => {
                        let ev = cell.pulse(T1Input::R);
                        let out = (ev.s, *c_latch, *q_latch);
                        *c_latch = false;
                        *q_latch = false;
                        out
                    }
                    _ => unreachable!("t1 state"),
                };
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 0 {
                        continue;
                    }
                    let fire = match port {
                        T1Port::S => s,
                        T1Port::C => c,
                        T1Port::Q => q,
                        T1Port::NotC => !c,
                        T1Port::NotQ => !q,
                    };
                    if fire {
                        self.emit(Signal::t1(id, port), tick, state, emitted, t1_hits, hazards);
                    }
                }
            }
        }
    }

    /// Delivers a pulse from `pin` to every sink.
    fn emit(
        &self,
        pin: Signal,
        tick: u64,
        state: &mut [CellState],
        emitted: &mut HashMap<Signal, bool>,
        t1_hits: &mut HashMap<CellId, u64>,
        hazards: &mut Vec<Hazard>,
    ) {
        emitted.insert(pin, true);
        let Some(sinks) = self.sinks.get(&pin) else {
            return;
        };
        let net = &self.timed.network;
        let n = self.timed.num_phases as u64;
        for &(sink, fanin_idx) in sinks {
            let sink_stage = self.timed.stages[sink.0 as usize] as u64;
            match net.kind(sink) {
                CellKind::Gate(_) => {
                    // Does this pulse belong to the sink's *next* firing, or
                    // the one after (same-tick emission at span n)?
                    let fires_this_tick =
                        tick >= sink_stage && (tick - sink_stage).is_multiple_of(n);
                    match &mut state[sink.0 as usize] {
                        CellState::Gate { buf, pending } => {
                            let slot = if fires_this_tick {
                                &mut pending[fanin_idx]
                            } else {
                                &mut buf[fanin_idx]
                            };
                            if *slot {
                                hazards.push(Hazard::DoublePulse {
                                    cell: sink,
                                    fanin: fanin_idx,
                                    tick,
                                });
                            }
                            *slot = true;
                        }
                        _ => unreachable!("gate state"),
                    }
                }
                CellKind::Dff => {
                    let fires_this_tick =
                        tick >= sink_stage && (tick - sink_stage).is_multiple_of(n);
                    match &mut state[sink.0 as usize] {
                        CellState::Dff { buf, pending } => {
                            let slot = if fires_this_tick { pending } else { buf };
                            if *slot {
                                hazards.push(Hazard::DoublePulse {
                                    cell: sink,
                                    fanin: 0,
                                    tick,
                                });
                            }
                            *slot = true;
                        }
                        _ => unreachable!("dff state"),
                    }
                }
                CellKind::T1 { .. } => {
                    let fires_this_tick =
                        tick >= sink_stage && (tick - sink_stage).is_multiple_of(n);
                    if fires_this_tick {
                        hazards.push(Hazard::T1DataOnClock { cell: sink, tick });
                        continue;
                    }
                    if let Some(&prev) = t1_hits.get(&sink) {
                        if prev == tick {
                            hazards.push(Hazard::T1Collision { cell: sink, tick });
                            continue;
                        }
                    }
                    t1_hits.insert(sink, tick);
                    match &mut state[sink.0 as usize] {
                        CellState::T1 {
                            cell,
                            c_latch,
                            q_latch,
                        } => {
                            let ev = cell.pulse(T1Input::T);
                            *c_latch |= ev.c_star;
                            *q_latch |= ev.q_star;
                        }
                        _ => unreachable!("t1 state"),
                    }
                }
                CellKind::Input => unreachable!("inputs have no fanins"),
            }
        }
    }
}

/// Every pulse observed during a traced run: `(tick, pin)` pairs in
/// `(tick, cell, port)` order. Consumed by [`crate::vcd`].
#[derive(Debug, Clone, Default)]
pub struct PulseTrace {
    /// The last tick the simulation executed.
    pub last_tick: u64,
    /// One entry per pulse per pin per tick.
    pub events: Vec<(u64, Signal)>,
}

/// Convenience wrapper: build a [`PulseSim`] and run `waves`.
///
/// # Errors
/// See [`PulseSim::run`].
pub fn simulate_waves(
    timed: &TimedNetwork,
    waves: &[Vec<bool>],
) -> Result<Vec<Vec<bool>>, SimError> {
    PulseSim::new(timed).run(waves)
}

const _: () = assert!(T1_NUM_PORTS == 5);
