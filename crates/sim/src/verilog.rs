//! Timed structural Verilog emission — the external leg of pulse-level
//! verification.
//!
//! [`write_verilog_timed`] serializes a [`TimedNetwork`] (the flow's final
//! artifact) as self-contained structural Verilog with behavioural
//! *clocked* cell models: the top module derives one interleaved phase
//! clock per phase and every cell instance is parameterized and annotated
//! with its stage (`σ`) and phase (`φ`). The file simulates stand-alone in
//! any event-driven Verilog simulator, so the timed netlist can be
//! re-verified by tooling that shares no code with this workspace. Output
//! is byte-deterministic and golden-diffed in the test suite.
//!
//! The heavy lifting lives in
//! [`sfq_netlist::export::render_verilog_timed`]; this wrapper exists so
//! simulation-side callers can hand over a [`TimedNetwork`] directly
//! (`sfq-netlist` cannot name that type without a dependency cycle).
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_netlist::Aig;
//! use sfq_sim::verilog::write_verilog_timed;
//!
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let (s, c) = aig.half_adder(a, b);
//! aig.output("s", s);
//! aig.output("c", c);
//! let flow = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
//! let v = write_verilog_timed(&flow.timed);
//! assert!(v.contains("module fa (clk, a, b, s, c);"));
//! assert!(v.contains("// σ="));
//! ```

use sfq_core::TimedNetwork;

/// Renders `timed` as structural Verilog with behavioural clocked cell
/// models, stage/phase annotations included. Byte-deterministic.
pub fn write_verilog_timed(timed: &TimedNetwork) -> String {
    sfq_netlist::export::render_verilog_timed(
        &timed.network,
        &timed.stages,
        timed.num_phases,
        timed.output_stage,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::{run_flow, FlowConfig};
    use sfq_netlist::Aig;

    #[test]
    fn timed_emission_is_deterministic_and_carries_the_schedule() {
        let mut aig = Aig::new("fa");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("cin");
        let (s, co) = aig.full_adder(a, b, c);
        aig.output("sum", s);
        aig.output("carry", co);
        let flow = run_flow(&aig, &FlowConfig::t1(4)).expect("flow succeeds");

        let v1 = write_verilog_timed(&flow.timed);
        let v2 = write_verilog_timed(&flow.timed);
        assert_eq!(v1, v2, "byte-deterministic");
        assert!(
            v1.contains("module fa (clk, a, b, cin, sum, carry);"),
            "{v1}"
        );
        // The T1 flow maps the full adder onto a T1 cell; its clocked
        // behavioural model must be part of the self-contained file.
        assert!(v1.contains("SFQ_T1_T #("), "T1 instance present:\n{v1}");
        assert!(v1.contains("module SFQ_T1_T"), "T1 model appended");
        // Every instance carries its stage/phase annotation.
        for line in v1.lines().filter(|l| l.trim_start().starts_with("SFQ_")) {
            assert!(line.contains("// σ="), "unannotated instance: {line}");
        }
        // Phase clocks cover all four phases.
        for p in 0..4 {
            assert!(v1.contains(&format!("wire clk_phi{p} ")), "phase {p} clock");
        }
    }
}
