//! First-order RSFQ energy accounting over pulse traces.
//!
//! The paper motivates SFQ with its extreme energy efficiency ("two to three
//! orders of magnitude less power as compared to CMOS") and reduces area to
//! JJ counts; this module closes the energy side of that claim for the
//! synthesized netlists. The model is the standard first-order RSFQ split:
//!
//! * **Dynamic** energy: every Josephson junction that switches dissipates
//!   `E_sw ≈ I_c · Φ0` — with `I_c = 100 µA` and the flux quantum
//!   `Φ0 = 2.07 mV·ps`, about **0.21 aJ per switching JJ** (Likharev's
//!   classic estimate). A cell that processes pulses in a given tick switches
//!   its JJs once, and driving a fanout tree switches the splitter JJs.
//! * **Static** power: conventional RSFQ biases every JJ through a resistor
//!   from a common voltage rail; with `I_b ≈ 0.7·I_c` at `V_b = 2.6 mV` the
//!   dissipation is **≈ 0.18 µW per JJ**, independent of activity. Static
//!   power dominates total power in conventional RSFQ — which is exactly why
//!   the paper's JJ-count (area) reductions are also energy reductions.
//! * **Clock** distribution: each clocked cell consumes one SFQ clock pulse
//!   per period, delivered through a splitter tree (≈ one 3-JJ splitter tap
//!   per cell per period).
//!
//! All constants are fields of [`EnergyModel`], so an ERSFQ-style zero-static
//! variant is one struct literal away (set `static_uw_per_jj` to 0).
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_netlist::{Aig, Library};
//! use sfq_sim::energy::{measure_energy, EnergyModel};
//! use sfq_sim::PulseSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let c = aig.input("c");
//! let (s, co) = aig.full_adder(a, b, c);
//! aig.output("s", s);
//! aig.output("co", co);
//! let res = run_flow(&aig, &FlowConfig::t1(4))?;
//!
//! let waves = vec![vec![true, false, true], vec![true, true, true]];
//! let (_, trace) = PulseSim::new(&res.timed).run_traced(&waves)?;
//! let report = measure_energy(
//!     &res.timed, &trace, waves.len(), &Library::default(), &EnergyModel::default(),
//! );
//! assert!(report.static_power_uw > 0.0);
//! assert!(report.dynamic_energy_aj > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::pulse::PulseTrace;
use sfq_core::TimedNetwork;
use sfq_netlist::{CellKind, Library};

/// Energy-model constants (documented at module level).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per switching JJ, in attojoules (`I_c · Φ0`).
    pub e_switch_aj: f64,
    /// Static bias dissipation per JJ, in microwatts (0 models ERSFQ).
    pub static_uw_per_jj: f64,
    /// Clock-distribution JJs switched per clocked cell per period
    /// (≈ one splitter tap).
    pub clock_jj_per_cell: f64,
    /// Clock frequency in GHz used to convert per-period energy to power.
    pub clock_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            e_switch_aj: 0.21,
            static_uw_per_jj: 0.18,
            clock_jj_per_cell: 3.0,
            clock_ghz: 10.0,
        }
    }
}

impl EnergyModel {
    /// An ERSFQ-style model: no bias-resistor static dissipation.
    pub fn ersfq() -> Self {
        EnergyModel {
            static_uw_per_jj: 0.0,
            ..Self::default()
        }
    }
}

/// Energy accounting for one traced pulse-simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Number of input waves that were streamed.
    pub waves: usize,
    /// Clock periods the run spanned.
    pub periods: u64,
    /// JJ switching events attributed to data pulses (incl. fanout
    /// splitters).
    pub data_switch_jj: u64,
    /// JJ switching events attributed to clock distribution.
    pub clock_switch_jj: u64,
    /// Total dynamic energy over the run, in attojoules.
    pub dynamic_energy_aj: f64,
    /// Dynamic energy per wave (per operation), in attojoules.
    pub energy_per_wave_aj: f64,
    /// Static power of the netlist, in microwatts.
    pub static_power_uw: f64,
    /// Dynamic power at the model's clock frequency, in microwatts.
    pub dynamic_power_uw: f64,
    /// `static + dynamic`, in microwatts.
    pub total_power_uw: f64,
}

/// Accounts the energy of a traced run of `timed` (see module docs for the
/// model).
///
/// A cell appearing in the trace at a given tick is charged its full JJ count
/// once for that tick (multi-port T1 cells are not double-charged), plus the
/// splitter tree serving the fanout of each emitting pin. Clock energy is
/// charged to every clocked cell for every period of the run, whether or not
/// data flowed — SFQ clocks do not gate.
pub fn measure_energy(
    timed: &TimedNetwork,
    trace: &PulseTrace,
    waves: usize,
    lib: &Library,
    model: &EnergyModel,
) -> EnergyReport {
    let net = &timed.network;
    let n = timed.num_phases as u64;
    let periods = trace.last_tick / n + 1;
    let fanouts = net.pin_fanout_counts();

    let mut data_switch_jj = 0u64;
    let mut last_charged: Option<(u64, u32)> = None;
    for &(tick, pin) in &trace.events {
        // Events are sorted by (tick, cell, port): charge the cell body once
        // per tick, the splitter tree once per emitting pin.
        if last_charged != Some((tick, pin.cell.0)) {
            data_switch_jj += lib.cell_area(net.kind(pin.cell));
            last_charged = Some((tick, pin.cell.0));
        }
        let fanout = fanouts[pin.cell.0 as usize][pin.port as usize] as usize;
        data_switch_jj += lib.splitter_area(fanout);
    }

    let clocked_cells = net
        .cell_ids()
        .filter(|&id| !matches!(net.kind(id), CellKind::Input))
        .count() as u64;
    let clock_switch_jj = (clocked_cells as f64 * periods as f64 * model.clock_jj_per_cell) as u64;

    let dynamic_energy_aj = (data_switch_jj + clock_switch_jj) as f64 * model.e_switch_aj;
    let energy_per_wave_aj = if waves > 0 {
        dynamic_energy_aj / waves as f64
    } else {
        0.0
    };

    let static_power_uw = timed.area(lib) as f64 * model.static_uw_per_jj;
    // aJ per period × GHz = 1e-18 J × 1e9 Hz = nW; µW needs another 1e-3.
    let dynamic_power_uw = dynamic_energy_aj / periods as f64 * model.clock_ghz * 1e-3;

    EnergyReport {
        waves,
        periods,
        data_switch_jj,
        clock_switch_jj,
        dynamic_energy_aj,
        energy_per_wave_aj,
        static_power_uw,
        dynamic_power_uw,
        total_power_uw: static_power_uw + dynamic_power_uw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::PulseSim;
    use sfq_core::{run_flow, FlowConfig};
    use sfq_netlist::Aig;

    fn and_gate_flow() -> sfq_core::FlowResult {
        let mut aig = Aig::new("and");
        let a = aig.input("a");
        let b = aig.input("b");
        let y = aig.and(a, b);
        aig.output("y", y);
        run_flow(&aig, &FlowConfig::multiphase(4)).expect("flow on AND gate")
    }

    fn report_for(waves: &[Vec<bool>]) -> EnergyReport {
        let res = and_gate_flow();
        let (_, trace) = PulseSim::new(&res.timed)
            .run_traced(waves)
            .expect("clean run");
        measure_energy(
            &res.timed,
            &trace,
            waves.len(),
            &Library::default(),
            &EnergyModel::default(),
        )
    }

    #[test]
    fn idle_waves_cost_only_clock_energy() {
        let r = report_for(&[vec![false, false]]);
        assert_eq!(r.data_switch_jj, 0, "no pulses anywhere on all-zero input");
        assert!(r.clock_switch_jj > 0, "the clock always runs");
        assert!(r.dynamic_energy_aj > 0.0);
    }

    #[test]
    fn active_waves_cost_more_than_idle() {
        let idle = report_for(&[vec![false, false]]);
        let active = report_for(&[vec![true, true]]);
        assert!(active.data_switch_jj > 0);
        assert!(active.dynamic_energy_aj > idle.dynamic_energy_aj);
    }

    #[test]
    fn data_energy_accumulates_across_waves() {
        let one = report_for(&[vec![true, true]]);
        let two = report_for(&[vec![true, true], vec![true, true]]);
        assert!(two.data_switch_jj > one.data_switch_jj);
        assert!(two.periods > one.periods);
    }

    #[test]
    fn static_power_is_area_times_constant() {
        let res = and_gate_flow();
        let lib = Library::default();
        let r = report_for(&[vec![true, false]]);
        let expected = res.timed.area(&lib) as f64 * EnergyModel::default().static_uw_per_jj;
        assert!((r.static_power_uw - expected).abs() < 1e-9);
        assert!(r.total_power_uw >= r.static_power_uw);
    }

    #[test]
    fn ersfq_model_has_zero_static_power() {
        let res = and_gate_flow();
        let waves = vec![vec![true, true]];
        let (_, trace) = PulseSim::new(&res.timed).run_traced(&waves).expect("clean");
        let r = measure_energy(
            &res.timed,
            &trace,
            1,
            &Library::default(),
            &EnergyModel::ersfq(),
        );
        assert_eq!(r.static_power_uw, 0.0);
        assert!(r.dynamic_power_uw > 0.0);
        assert_eq!(r.total_power_uw, r.dynamic_power_uw);
    }

    #[test]
    fn exact_accounting_on_a_single_and_gate() {
        // Trace for a=b=1, 4 phases: PI pulses (0 JJ cells) at tick 0, the
        // AND fires once. Its fanout is the single PO, so no splitters.
        let res = and_gate_flow();
        let waves = vec![vec![true, true]];
        let (_, trace) = PulseSim::new(&res.timed).run_traced(&waves).expect("clean");
        let lib = Library::default();
        let r = measure_energy(&res.timed, &trace, 1, &lib, &EnergyModel::default());
        // Cells charged: exactly the pulse-emitting cells — two PIs (0 JJ)
        // and whatever clocked cells forward the 1-pulses to the output.
        // On this netlist every clocked cell is on the PI→PO path and fires
        // once, so the charge equals the total clocked area.
        assert_eq!(r.data_switch_jj, res.timed.area(&lib));
    }

    #[test]
    fn t1_cell_charged_once_per_tick_despite_multiple_ports() {
        let mut aig = Aig::new("fa");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("c");
        let (s, co) = aig.full_adder(a, b, c);
        aig.output("s", s);
        aig.output("co", co);
        let res = run_flow(&aig, &FlowConfig::t1(4)).expect("t1 flow");
        assert!(res.report.t1_used >= 1, "FA maps onto a T1 cell");
        // a=1, b=1, c=1 fires S and C in the same tick; the cell body must
        // be charged once, not twice.
        let waves = vec![vec![true, true, true]];
        let (_, trace) = PulseSim::new(&res.timed).run_traced(&waves).expect("clean");
        let lib = Library::default();
        let r = measure_energy(&res.timed, &trace, 1, &lib, &EnergyModel::default());
        let t1_area = lib.t1_area(0b00011);
        assert!(
            r.data_switch_jj <= res.timed.area(&lib),
            "single-tick multi-port emission must not double-charge the T1 \
             (charged {} JJ, T1 body is {} JJ, netlist is {} JJ)",
            r.data_switch_jj,
            t1_area,
            res.timed.area(&lib),
        );
    }
}
