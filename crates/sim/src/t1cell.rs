//! Behavioural model of the T1 flip-flop (paper Fig. 1a/1b).
//!
//! The cell is a superconductive loop holding one bit of state. Pulses at
//! `T` toggle the state, emitting `Q*` on a 0→1 transition and `C*` on a
//! 1→0 transition; a pulse at `R` emits `S` if the state is 1 (resetting
//! it) and is rejected otherwise.

/// Which input a pulse arrives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum T1Input {
    /// Toggle input (data pulses merge here).
    T,
    /// Reset input (the clock in synchronous use).
    R,
}

/// What a single input pulse produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct T1Event {
    /// A pulse left the `Q*` output (0→1 toggle).
    pub q_star: bool,
    /// A pulse left the `C*` output (1→0 toggle).
    pub c_star: bool,
    /// A pulse left the `S` output (reset of a stored 1).
    pub s: bool,
}

/// The T1 flip-flop state machine.
///
/// # Example
///
/// ```
/// use sfq_sim::{T1Cell, T1Input};
/// let mut cell = T1Cell::new();
/// // Two data pulses: the second one emits C* (the "carry").
/// assert!(cell.pulse(T1Input::T).q_star);
/// assert!(cell.pulse(T1Input::T).c_star);
/// // State is back to 0: a reset pulse is rejected (no S).
/// assert!(!cell.pulse(T1Input::R).s);
/// ```
#[derive(Debug, Clone, Default)]
pub struct T1Cell {
    state: bool,
}

impl T1Cell {
    /// A cell with the loop in state 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current loop state.
    pub fn state(&self) -> bool {
        self.state
    }

    /// Applies one pulse and reports which outputs fired.
    pub fn pulse(&mut self, input: T1Input) -> T1Event {
        let mut ev = T1Event::default();
        match input {
            T1Input::T => {
                if self.state {
                    ev.c_star = true;
                } else {
                    ev.q_star = true;
                }
                self.state = !self.state;
            }
            T1Input::R => {
                if self.state {
                    ev.s = true;
                    self.state = false;
                }
                // A reset pulse on state 0 is rejected by J_R.
            }
        }
        ev
    }
}

/// One full synchronous evaluation: data pulses for inputs `(a, b, c)`
/// arriving at distinct times on `T`, then a clock pulse on `R`.
///
/// Returns `(s, c, q)` — the latched XOR3 / MAJ3 / OR3 outputs, matching the
/// full-adder construction of the paper's Fig. 1c.
pub fn t1_synchronous_eval(cell: &mut T1Cell, a: bool, b: bool, c: bool) -> (bool, bool, bool) {
    let mut c_latch = false;
    let mut q_latch = false;
    for bit in [a, b, c] {
        if bit {
            let ev = cell.pulse(T1Input::T);
            c_latch |= ev.c_star;
            q_latch |= ev.q_star;
        }
    }
    let ev = cell.pulse(T1Input::R);
    (ev.s, c_latch, q_latch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_table_matches_xor3_maj3_or3() {
        for row in 0..8u32 {
            let (a, b, c) = (row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1);
            let mut cell = T1Cell::new();
            let (s, carry, q) = t1_synchronous_eval(&mut cell, a, b, c);
            assert_eq!(s, a ^ b ^ c, "S=XOR3 at row {row}");
            assert_eq!(carry, (a & b) | (a & c) | (b & c), "C=MAJ3 at row {row}");
            assert_eq!(q, a | b | c, "Q=OR3 at row {row}");
            // The clock pulse always drains the loop.
            assert!(!cell.state(), "state resets after R at row {row}");
        }
    }

    #[test]
    fn back_to_back_evaluations_are_independent() {
        let mut cell = T1Cell::new();
        for row in [0b111u32, 0b000, 0b101, 0b010, 0b011] {
            let (a, b, c) = (row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1);
            let (s, _, _) = t1_synchronous_eval(&mut cell, a, b, c);
            assert_eq!(s, a ^ b ^ c);
        }
    }

    #[test]
    fn paper_fig1b_pulse_sequence() {
        // Fig. 1b: periods with data patterns a=1; a=1,b=1; a=1,b=1,c=1.
        let mut cell = T1Cell::new();
        // Period 1: one pulse → Q*, then R → S.
        let e1 = cell.pulse(T1Input::T);
        assert!(e1.q_star && !e1.c_star);
        assert!(cell.pulse(T1Input::R).s);
        // Period 2: two pulses → Q* then C*, R rejected.
        assert!(cell.pulse(T1Input::T).q_star);
        assert!(cell.pulse(T1Input::T).c_star);
        assert!(!cell.pulse(T1Input::R).s);
        // Period 3: three pulses → Q*, C*, Q*; R → S.
        assert!(cell.pulse(T1Input::T).q_star);
        assert!(cell.pulse(T1Input::T).c_star);
        assert!(cell.pulse(T1Input::T).q_star);
        assert!(cell.pulse(T1Input::R).s);
    }
}
