//! Pulse-trace recording and rendering (ASCII art and CSV).
//!
//! Used to regenerate the paper's Fig. 1b: the T1 cell's `T`/`R` inputs,
//! loop state, and `S`/`C*`/`Q*` outputs over time — and, via
//! [`trace_waveform`], to project any simulator [`PulseTrace`] onto an
//! aligned, CSV-renderable waveform.

use crate::pulse::PulseTrace;
use sfq_core::TimedNetwork;
use sfq_netlist::Signal;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One named signal trace: a pulse marker (or level) per time slot.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Signal name shown in the left margin.
    pub name: String,
    /// One sample per slot; `true` renders as a pulse.
    pub samples: Vec<bool>,
    /// Render as a level (loop current) instead of pulses.
    pub level: bool,
}

/// A collection of aligned traces.
///
/// # Example
///
/// ```
/// use sfq_sim::Waveform;
/// let mut wf = Waveform::new(8);
/// wf.pulse_trace("T", &[0, 2, 3]);
/// wf.level_trace("state", &[false, true, true, false, true, true, true, false]);
/// let art = wf.render_ascii();
/// assert!(art.contains("T"));
/// assert!(art.contains("state"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    slots: usize,
    traces: Vec<Trace>,
}

impl Waveform {
    /// An empty waveform with `slots` time slots.
    pub fn new(slots: usize) -> Self {
        Waveform {
            slots,
            traces: Vec::new(),
        }
    }

    /// Number of time slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Adds a pulse trace firing at the given slots.
    ///
    /// # Panics
    /// Panics if a slot is out of range.
    pub fn pulse_trace(&mut self, name: impl Into<String>, pulse_slots: &[usize]) {
        let mut samples = vec![false; self.slots];
        for &s in pulse_slots {
            assert!(s < self.slots, "slot out of range");
            samples[s] = true;
        }
        self.traces.push(Trace {
            name: name.into(),
            samples,
            level: false,
        });
    }

    /// Adds a level trace (e.g. the T1 loop current).
    ///
    /// # Panics
    /// Panics if `samples.len()` differs from the slot count.
    pub fn level_trace(&mut self, name: impl Into<String>, samples: &[bool]) {
        assert_eq!(
            samples.len(),
            self.slots,
            "level trace must cover all slots"
        );
        self.traces.push(Trace {
            name: name.into(),
            samples: samples.to_vec(),
            level: true,
        });
    }

    /// All traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Renders the waveform as fixed-width ASCII art.
    pub fn render_ascii(&self) -> String {
        let name_w = self
            .traces
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        // Time ruler.
        let _ = write!(out, "{:>name_w$} ", "t");
        for i in 0..self.slots {
            let _ = write!(out, "{:>3}", i);
        }
        out.push('\n');
        for t in &self.traces {
            let _ = write!(out, "{:>name_w$} ", t.name);
            for &s in &t.samples {
                if t.level {
                    out.push_str(if s { "▔▔▔" } else { "▁▁▁" });
                } else {
                    out.push_str(if s { " │ " } else { " · " });
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the waveform as CSV (`slot,name1,name2,…`).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("slot");
        for t in &self.traces {
            let _ = write!(out, ",{}", t.name);
        }
        out.push('\n');
        for i in 0..self.slots {
            let _ = write!(out, "{i}");
            for t in &self.traces {
                let _ = write!(out, ",{}", u8::from(t.samples[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Projects a simulator [`PulseTrace`] onto an aligned [`Waveform`]: one
/// pulse trace per pin that fired (in first-firing order, named exactly as
/// in [`crate::vcd`] dumps), one slot per simulator tick. Pins that stayed
/// silent are omitted, mirroring the VCD export.
pub fn trace_waveform(timed: &TimedNetwork, trace: &PulseTrace) -> Waveform {
    let slots = (trace.last_tick + 1) as usize;
    let mut order: Vec<Signal> = Vec::new();
    let mut ticks: HashMap<Signal, Vec<usize>> = HashMap::new();
    for &(tick, pin) in &trace.events {
        if !ticks.contains_key(&pin) {
            order.push(pin);
        }
        ticks.entry(pin).or_default().push(tick as usize);
    }
    let mut wf = Waveform::new(slots);
    for pin in order {
        wf.pulse_trace(crate::vcd::pin_name(timed, pin), &ticks[&pin]);
    }
    wf
}

/// Builds the paper's Fig. 1b stimulus/response waveform from the
/// behavioural T1 cell: three clock periods carrying the data patterns
/// `{a}`, `{a,b}`, `{a,b,c}`.
pub fn fig1b_waveform() -> Waveform {
    use crate::t1cell::{T1Cell, T1Input};
    // Time layout per period (4 slots): data at slots 0..3, clock at slot 3.
    let periods = 3usize;
    let slot_count = periods * 4;
    let mut t_slots = Vec::new();
    let mut r_slots = Vec::new();
    let mut s_slots = Vec::new();
    let mut cstar_slots = Vec::new();
    let mut qstar_slots = Vec::new();
    let mut level = vec![false; slot_count];
    let mut cell = T1Cell::new();
    let patterns: [&[usize]; 3] = [&[0], &[0, 1], &[0, 1, 2]];
    for (p, pat) in patterns.iter().enumerate() {
        let base = p * 4;
        for &off in *pat {
            let slot = base + off;
            t_slots.push(slot);
            let ev = cell.pulse(T1Input::T);
            if ev.q_star {
                qstar_slots.push(slot);
            }
            if ev.c_star {
                cstar_slots.push(slot);
            }
            for l in level.iter_mut().skip(slot) {
                *l = cell.state();
            }
        }
        let slot = base + 3;
        r_slots.push(slot);
        let ev = cell.pulse(T1Input::R);
        if ev.s {
            s_slots.push(slot);
        }
        for l in level.iter_mut().skip(slot) {
            *l = cell.state();
        }
    }
    let mut wf = Waveform::new(slot_count);
    wf.pulse_trace("Data(T)", &t_slots);
    wf.pulse_trace("Clock(R)", &r_slots);
    wf.level_trace("Loop", &level);
    wf.pulse_trace("Sum(S)", &s_slots);
    wf.pulse_trace("Carry(C*)", &cstar_slots);
    wf.pulse_trace("Or(Q*)", &qstar_slots);
    wf
}
