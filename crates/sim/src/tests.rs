use crate::margin::{analyze_margins, MarginConfig};
use crate::pulse::{simulate_waves, Hazard, PulseSim, SimError};
use crate::waveform::{fig1b_waveform, trace_waveform};
use proptest::prelude::*;
use sfq_core::{run_flow, run_flow_on_network, FlowConfig, TimedNetwork};
use sfq_netlist::{Aig, GateKind, Network, Signal, T1Port};

fn fa_aig() -> Aig {
    let mut aig = Aig::new("fa");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let (s, co) = aig.full_adder(a, b, c);
    aig.output("s", s);
    aig.output("co", co);
    aig
}

fn adder_aig(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("add{bits}"));
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let mut carry = aig.const_false();
    let mut sums = Vec::new();
    for i in 0..bits {
        let (s, c) = aig.full_adder(a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    sums.push(carry);
    aig.output_word("s", &sums);
    aig
}

#[test]
fn pulse_sim_matches_boolean_sim_single_phase() {
    let aig = fa_aig();
    let res = run_flow(&aig, &FlowConfig::single_phase()).unwrap();
    for row in 0..8u32 {
        let wave = vec![row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1];
        let outs = simulate_waves(&res.timed, std::slice::from_ref(&wave)).unwrap();
        let (a, b, c) = (wave[0], wave[1], wave[2]);
        assert_eq!(outs[0][0], a ^ b ^ c, "sum at row {row}");
        assert_eq!(
            outs[0][1],
            (a & b) | (a & c) | (b & c),
            "carry at row {row}"
        );
    }
}

#[test]
fn pulse_sim_t1_flow_full_adder() {
    let aig = fa_aig();
    let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
    assert!(res.report.t1_used >= 1, "FA must map to a T1 cell");
    for row in 0..8u32 {
        let wave = vec![row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1];
        let outs = simulate_waves(&res.timed, std::slice::from_ref(&wave)).unwrap();
        let (a, b, c) = (wave[0], wave[1], wave[2]);
        assert_eq!(outs[0][0], a ^ b ^ c, "sum at row {row}");
        assert_eq!(
            outs[0][1],
            (a & b) | (a & c) | (b & c),
            "carry at row {row}"
        );
    }
}

#[test]
fn pulse_sim_pipelining_streams_waves() {
    // Multiple waves in flight: each output wave must match its input wave.
    let aig = adder_aig(4);
    for config in [
        FlowConfig::single_phase(),
        FlowConfig::multiphase(4),
        FlowConfig::t1(4),
    ] {
        let res = run_flow(&aig, &config).unwrap();
        let waves: Vec<Vec<bool>> = (0..12u64)
            .map(|w| {
                let a = (w * 7 + 3) & 0xF;
                let b = (w * 13 + 5) & 0xF;
                let mut bits = Vec::new();
                for i in 0..4 {
                    bits.push(a >> i & 1 == 1);
                }
                for i in 0..4 {
                    bits.push(b >> i & 1 == 1);
                }
                bits
            })
            .collect();
        let outs = simulate_waves(&res.timed, &waves).unwrap();
        for (w, wave) in waves.iter().enumerate() {
            let a: u64 = (0..4).map(|i| (wave[i] as u64) << i).sum();
            let b: u64 = (0..4).map(|i| (wave[4 + i] as u64) << i).sum();
            let expect = a + b;
            let got: u64 = (0..5).map(|i| (outs[w][i] as u64) << i).sum();
            assert_eq!(got, expect, "wave {w} ({}φ): {a}+{b}", config.phases);
        }
    }
}

#[test]
fn pulse_sim_detects_handcrafted_hazard() {
    // Deliberately broken timing: two gates in series assigned the same
    // stage via a hand-built TimedNetwork must trip the audit; bypassing
    // the audit, the pulse simulator must flag the problem (an INV firing
    // with its input pulse arriving the same tick is a double-fire of the
    // producer into a same-tick consumer → non-causal).
    let mut net = Network::new("broken");
    let a = net.add_input("a");
    let g1 = net.add_gate(GateKind::Buf, &[a]);
    let g2 = net.add_gate(GateKind::Buf, &[g1]);
    net.add_output("f", g2);
    // Stages: g1 at 1, g2 at 6 with n = 4 → span 5 > n: lifetime violation.
    let timed = sfq_core::TimedNetwork {
        network: net,
        stages: vec![0, 1, 6],
        num_phases: 4,
        output_stage: 6,
    };
    assert!(timed.audit().is_err(), "audit must reject span > n");
    // The pulse simulator sees the pulse arrive at tick 1 and the consumer
    // fire at tick 2 (6 mod 4) pulling stale/no data — streaming several
    // all-ones waves surfaces a double pulse on g2's input buffer.
    let waves: Vec<Vec<bool>> = (0..4).map(|_| vec![true]).collect();
    let r = simulate_waves(&timed, &waves);
    assert!(r.is_err(), "expected hazards from lifetime violation");
}

#[test]
fn wave_arity_mismatch_is_a_typed_error() {
    let aig = fa_aig();
    let res = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
    // Wave 0 is well-formed; wave 1 is too wide. The simulator must reject
    // the run up front with a typed error, never index out of bounds.
    let err = simulate_waves(&res.timed, &[vec![true, false, true], vec![true; 5]])
        .expect_err("arity mismatch rejected");
    assert_eq!(
        err,
        SimError::WaveArity {
            wave: 1,
            got: 5,
            expected: 3
        }
    );
    assert!(err.hazards().is_empty(), "no hazards on a rejected run");
    assert_eq!(
        err.to_string(),
        "wave 1 carries 5 value(s), but the design has 3 input(s)"
    );
    // An empty wave is caught too, not silently treated as all-zero.
    let err = simulate_waves(&res.timed, &[Vec::new()]).expect_err("empty wave rejected");
    assert!(matches!(
        err,
        SimError::WaveArity {
            wave: 0,
            got: 0,
            expected: 3
        }
    ));
    // The traced entry point shares the validation.
    let sim = PulseSim::new(&res.timed);
    assert!(sim.run_traced(&[vec![true]]).is_err());
}

#[test]
fn hazard_taxonomy_double_pulse() {
    // PI → BUF(σ=1) → BUF(σ=6) under n = 4: wave 1's pulse lands on the
    // second buffer's input slot at tick 5, before that buffer ever fired,
    // trampling wave 0's buffered pulse.
    let mut net = Network::new("double");
    let a = net.add_input("a");
    let u = net.add_gate(GateKind::Buf, &[a]);
    let v = net.add_gate(GateKind::Buf, &[u]);
    net.add_output("y", v);
    let timed = TimedNetwork {
        network: net,
        stages: vec![0, 1, 6],
        num_phases: 4,
        output_stage: 6,
    };
    let err = simulate_waves(&timed, &[vec![true], vec![true]]).expect_err("double pulse");
    let hz = err.hazards();
    assert_eq!(hz.len(), 1, "exactly one collision recorded: {hz:?}");
    assert!(
        matches!(
            hz[0],
            Hazard::DoublePulse {
                cell,
                fanin: 0,
                tick: 5
            } if cell.0 == 2
        ),
        "got {hz:?}"
    );
}

#[test]
fn hazard_taxonomy_t1_collision() {
    // Two PIs feed a T1's T inputs at the same stage: every wave delivers
    // two same-tick pulses — one collision per wave, at ticks 0, 4, 8.
    let mut net = Network::new("collide");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let t1 = net.add_t1(0b00011, &[a, b, c]);
    net.add_output("s", Signal::t1(t1, T1Port::S));
    net.add_output("c", Signal::t1(t1, T1Port::C));
    let timed = TimedNetwork {
        stages: vec![0, 0, 0, 3],
        num_phases: 4,
        output_stage: 3,
        network: net,
    };
    let waves: Vec<Vec<bool>> = (0..3).map(|_| vec![true, true, false]).collect();
    let err = simulate_waves(&timed, &waves).expect_err("T pulses collide");
    let hz = err.hazards();
    assert_eq!(hz.len(), waves.len(), "one collision per wave: {hz:?}");
    for (w, h) in hz.iter().enumerate() {
        assert!(
            matches!(h, Hazard::T1Collision { cell, tick } if cell.0 == 3 && *tick == 4 * w as u64),
            "wave {w}: {h:?}"
        );
    }
    // Margin accounting agrees: with zero jitter the nominal arrival
    // separation is exactly 0 ps < resolution, so every Monte-Carlo trial
    // is hazardous and hazard_rate() saturates at 1.
    let margins = analyze_margins(
        &timed,
        &MarginConfig {
            jitter_ps: 0.0,
            trials: 64,
            ..MarginConfig::default()
        },
    );
    assert_eq!(margins.t1_cells, 1);
    assert_eq!(margins.hazard_rate(), 1.0, "{margins:?}");
}

#[test]
fn hazard_taxonomy_t1_data_on_clock() {
    // One fanin arrives exactly at the T1's own firing stage.
    let mut net = Network::new("onclock");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let d1 = net.add_dff(a);
    let d2 = net.add_dff(b);
    let d3 = net.add_dff(c);
    let t1 = net.add_t1(0b00011, &[d1, d2, d3]);
    net.add_output("s", Signal::t1(t1, T1Port::S));
    net.add_output("c", Signal::t1(t1, T1Port::C));
    let timed = TimedNetwork {
        stages: vec![0, 0, 0, 1, 2, 4, 4],
        num_phases: 4,
        output_stage: 4,
        network: net,
    };
    let err = simulate_waves(&timed, &[vec![false, false, true]]).expect_err("pulse on clock tick");
    let hz = err.hazards();
    assert_eq!(hz.len(), 1, "{hz:?}");
    assert!(
        matches!(hz[0], Hazard::T1DataOnClock { cell, tick: 4 } if cell.0 == 6),
        "got {hz:?}"
    );
    // A clean T1 flow under zero jitter accounts zero hazardous trials —
    // the other side of the hazard_rate() ledger.
    let aig = fa_aig();
    let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
    let margins = analyze_margins(
        &res.timed,
        &MarginConfig {
            jitter_ps: 0.0,
            trials: 64,
            ..MarginConfig::default()
        },
    );
    assert_eq!(margins.hazard_rate(), 0.0);
}

#[test]
fn traced_artifacts_are_byte_deterministic() {
    // Two traced runs on the same design + vectors must render to
    // byte-identical VCD and CSV — the precondition for golden-diffing.
    let aig = adder_aig(4);
    let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
    let waves: Vec<Vec<bool>> = (0..6u64)
        .map(|w| (0..8).map(|i| (w * 11 + 5) >> i & 1 == 1).collect())
        .collect();
    let sim = PulseSim::new(&res.timed);
    let (o1, t1_trace) = sim.run_traced(&waves).expect("clean run");
    let (o2, t2_trace) = sim.run_traced(&waves).expect("clean run");
    assert_eq!(o1, o2);
    let vcd1 = crate::vcd::render_vcd(&res.timed, &t1_trace);
    let vcd2 = crate::vcd::render_vcd(&res.timed, &t2_trace);
    assert_eq!(vcd1, vcd2, "VCD byte-identical across runs");
    let csv1 = trace_waveform(&res.timed, &t1_trace).render_csv();
    let csv2 = trace_waveform(&res.timed, &t2_trace).render_csv();
    assert_eq!(csv1, csv2, "CSV byte-identical across runs");
    // The CSV projection covers every tick and starts with the header row.
    assert!(csv1.starts_with("slot,"));
    assert_eq!(
        csv1.lines().count(),
        1 + (t1_trace.last_tick + 1) as usize,
        "one row per tick"
    );
}

#[test]
fn pulse_sim_inverter_semantics() {
    // A clocked inverter emits exactly when no pulse arrived.
    let mut aig = Aig::new("inv");
    let a = aig.input("a");
    aig.output("na", !a);
    let res = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
    let outs = simulate_waves(&res.timed, &[vec![false], vec![true], vec![false]]).unwrap();
    assert_eq!(outs, vec![vec![true], vec![false], vec![true]]);
}

#[test]
fn fig1b_waveform_matches_paper() {
    let wf = fig1b_waveform();
    // Slot layout: periods of 4; data at offsets 0..2, clock at offset 3.
    let by_name = |n: &str| {
        wf.traces()
            .iter()
            .find(|t| t.name == n)
            .unwrap_or_else(|| panic!("trace {n}"))
    };
    let s = by_name("Sum(S)");
    // Period 1 (one data pulse): S fires at clock slot 3.
    assert!(s.samples[3]);
    // Period 2 (two pulses): no S at slot 7.
    assert!(!s.samples[7]);
    // Period 3 (three pulses): S fires at slot 11.
    assert!(s.samples[11]);
    let c = by_name("Carry(C*)");
    // C* fires on the 2nd pulse of periods 2 and 3.
    assert!(c.samples[5] && c.samples[9]);
    assert_eq!(c.samples.iter().filter(|&&x| x).count(), 2);
    let q = by_name("Or(Q*)");
    // Q* fires on the 1st pulse of every period and the 3rd of period 3.
    assert!(q.samples[0] && q.samples[4] && q.samples[8] && q.samples[10]);
    // Renderings exist and carry every trace.
    let art = wf.render_ascii();
    for name in [
        "Data(T)",
        "Clock(R)",
        "Loop",
        "Sum(S)",
        "Carry(C*)",
        "Or(Q*)",
    ] {
        assert!(art.contains(name), "ascii art missing {name}");
    }
    let csv = wf.render_csv();
    assert_eq!(csv.lines().count(), wf.slots() + 1);
}

#[test]
fn pulse_sim_reusable() {
    let aig = fa_aig();
    let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
    let sim = PulseSim::new(&res.timed);
    let w1 = sim.run(&[vec![true, false, false]]).unwrap();
    let w2 = sim.run(&[vec![true, true, true]]).unwrap();
    assert_eq!(w1[0], vec![true, false]);
    assert_eq!(w2[0], vec![true, true]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pulse-level and Boolean simulation agree on random mapped networks
    /// for every flow — the central soundness property of the whole stack.
    #[test]
    fn prop_pulse_equals_boolean(ops in proptest::collection::vec((0u8..3, 0usize..12, 0usize..12), 3..30),
                                 n_phases in 4u8..7,
                                 use_t1: bool,
                                 waves_seed in 0u64..1000) {
        let mut aig = Aig::new("rand");
        let mut pool: Vec<sfq_netlist::AigLit> = (0..4).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib) in ops {
            let x = pool[ia % pool.len()];
            let y = pool[ib % pool.len()];
            let r = match op {
                0 => aig.and(x, y),
                1 => aig.or(x, y),
                _ => aig.xor(x, y),
            };
            pool.push(r);
        }
        let f = *pool.last().unwrap();
        prop_assume!(!f.is_constant());
        aig.output("f", f);
        let g = pool[pool.len() / 2];
        if !g.is_constant() {
            aig.output("g", g);
        }
        let config = FlowConfig { phases: n_phases, use_t1, ..FlowConfig::single_phase() };
        let res = run_flow(&aig, &config).unwrap();

        // Three random waves through the pipeline.
        let mut seed = waves_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || { seed ^= seed << 13; seed ^= seed >> 7; seed ^= seed << 17; seed };
        let waves: Vec<Vec<bool>> = (0..3).map(|_| (0..4).map(|_| next() & 1 == 1).collect()).collect();
        let pulse_out = simulate_waves(&res.timed, &waves).unwrap();
        for (w, wave) in waves.iter().enumerate() {
            let pats: Vec<u64> = wave.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
            let bool_out = res.timed.network.simulate(&pats);
            for (k, &bo) in bool_out.iter().enumerate() {
                prop_assert_eq!(pulse_out[w][k], bo & 1 == 1, "wave {} output {}", w, k);
            }
        }
    }
}

#[test]
fn pulse_sim_on_small_flows_all_input_combos() {
    // Exhaustive 5-bit check through a mixed network with T1 cells.
    let mut net = Network::new("mix");
    let ins: Vec<_> = (0..5).map(|i| net.add_input(format!("x{i}"))).collect();
    let axb = net.add_gate(GateKind::Xor2, &[ins[0], ins[1]]);
    let s1 = net.add_gate(GateKind::Xor2, &[axb, ins[2]]);
    let ab = net.add_gate(GateKind::And2, &[ins[0], ins[1]]);
    let t = net.add_gate(GateKind::And2, &[axb, ins[2]]);
    let co = net.add_gate(GateKind::Or2, &[ab, t]);
    let d = net.add_gate(GateKind::Nand2, &[s1, ins[3]]);
    let e = net.add_gate(GateKind::Nor2, &[co, ins[4]]);
    let f = net.add_gate(GateKind::Xnor2, &[d, e]);
    net.add_output("f", f);
    net.add_output("s", s1);
    let res = run_flow_on_network(&net, &FlowConfig::t1(4)).unwrap();
    for row in 0..32u32 {
        let wave: Vec<bool> = (0..5).map(|i| row >> i & 1 == 1).collect();
        let pats: Vec<u64> = wave.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let expect = net.simulate(&pats);
        let outs = simulate_waves(&res.timed, std::slice::from_ref(&wave)).unwrap();
        for k in 0..2 {
            assert_eq!(outs[0][k], expect[k] & 1 == 1, "row {row} output {k}");
        }
    }
}
