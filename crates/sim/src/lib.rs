//! Pulse-level simulation of multiphase SFQ netlists.
//!
//! Where `sfq_netlist::Network::simulate` evaluates steady-state Boolean
//! functions, this crate simulates *pulses*: every clocked cell fires once
//! per period at its assigned stage, data pulses travel between firings, and
//! the T1 flip-flop is modelled as the state machine of the paper's Fig. 1a
//! (toggle on `T`, conditional reset on `R`). The simulator therefore
//! validates the very thing the paper's methodology promises — that phase
//! assignment plus DFF insertion make the T1 cell's input-timing rules hold —
//! and flags any violation as a [`Hazard`] instead of silently computing
//! wrong values.
//!
//! The [`t1cell`] module exposes the standalone behavioural cell used to
//! regenerate the paper's Fig. 1b waveform; [`waveform`] renders pulse
//! traces as ASCII art or CSV; [`vcd`] exports traced runs as VCD files for
//! standard waveform viewers. Beyond the paper's discrete model, [`energy`]
//! converts traces into first-order RSFQ energy numbers and [`margin`]
//! Monte-Carlo-samples analog timing jitter against the T1 separation rules.
//!
//! Two modules turn the simulator into a verification gate: [`equiv`]
//! co-simulates a timed network against its cycle-free reference function
//! (exhaustive or sampled vector sweeps, with counterexample shrinking) and
//! [`verilog`] emits the timed netlist as self-contained clocked Verilog
//! for independent, external re-simulation.
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_netlist::Aig;
//! use sfq_sim::simulate_waves;
//!
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let c = aig.input("c");
//! let (s, co) = aig.full_adder(a, b, c);
//! aig.output("s", s);
//! aig.output("co", co);
//! let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
//!
//! // Pipeline two waves of inputs through the pulse-level model.
//! let waves = vec![vec![true, true, false], vec![true, true, true]];
//! let outs = simulate_waves(&res.timed, &waves).unwrap();
//! assert_eq!(outs[0], vec![false, true]); // 1+1+0 = 10₂
//! assert_eq!(outs[1], vec![true, true]);  // 1+1+1 = 11₂
//! ```

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub mod energy;
pub mod equiv;
pub mod margin;
pub mod pulse;
pub mod t1cell;
pub mod vcd;
pub mod verilog;
pub mod waveform;

pub use energy::{measure_energy, EnergyModel, EnergyReport};
pub use equiv::{
    check_against_aig, check_timed, Counterexample, EquivConfig, EquivError, EquivReport, SweepMode,
};
pub use margin::{analyze_margins, MarginConfig, MarginReport};
pub use pulse::{simulate_waves, Hazard, PulseSim, PulseTrace, SimError};
pub use t1cell::{T1Cell, T1Event, T1Input};
pub use verilog::write_verilog_timed;
pub use waveform::{trace_waveform, Trace, Waveform};

#[cfg(test)]
mod tests;
