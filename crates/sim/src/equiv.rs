//! Pulse-level equivalence checking: the third leg of the verification
//! story.
//!
//! The differential harness proves the fast mapping paths match their
//! reference implementations, and [`TimedNetwork::audit`] re-checks the
//! timing rules structurally — but neither proves that the *timed* artifact
//! still computes the mapped function when actual pulses stream through it.
//! This module closes that loop by co-simulating the timed network through
//! [`PulseSim`] against a cycle-free reference evaluation
//! (`Network::simulate` on the same mapped cells, or the original
//! [`Aig`]), wave by wave, over a deterministic vector sweep:
//!
//! - **exhaustive** for designs with at most
//!   [`EquivConfig::max_exhaustive_inputs`] inputs (every input vector,
//!   streamed back-to-back so wave pipelining is exercised too);
//! - **sampled** above that: all-zero/all-one wave-pipelining boundary
//!   pairs, a walking-one scan, and [`EquivConfig::random_waves`] seeded
//!   random vectors.
//!
//! A mismatch is not just reported — it is **shrunk**. The bundled proptest
//! shim deliberately ships without shrinking, so the minimizer lives here:
//! greedy wave-set reduction followed by bit clearing, re-simulating each
//! candidate, until the failing stimulus is minimal (bounded by
//! [`EquivConfig::shrink_budget`] re-simulations). The resulting
//! [`Counterexample`] renders on one line, so batch drivers and the daemon
//! can stream it inside a `FAILED(...)` row.

use crate::pulse::{PulseSim, SimError};
use sfq_core::TimedNetwork;
use sfq_netlist::{faultpt, Aig};
use std::fmt;

/// Sweep parameters of one equivalence check. The defaults match the
/// `sfqt1 verify` CLI and the daemon's `verify=1` mode, so reports stay
/// byte-identical across entry points.
#[derive(Debug, Clone)]
pub struct EquivConfig {
    /// Largest input count still swept exhaustively (2^k vectors).
    pub max_exhaustive_inputs: u32,
    /// Seeded random vectors appended in sampled mode.
    pub random_waves: usize,
    /// Seed of the xorshift* stimulus stream (sampled mode only).
    pub seed: u64,
    /// Ceiling on re-simulations spent shrinking one counterexample.
    pub shrink_budget: usize,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            max_exhaustive_inputs: 10,
            random_waves: 64,
            seed: 0x00DD_BA11_5EED_CAFE,
            shrink_budget: 512,
        }
    }
}

/// How the vector sweep covered the input space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Every input vector was driven (designs with few inputs).
    Exhaustive,
    /// Corner + walking-one + seeded random vectors (wide designs).
    Sampled,
}

impl fmt::Display for SweepMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepMode::Exhaustive => write!(f, "exhaustive"),
            SweepMode::Sampled => write!(f, "sampled"),
        }
    }
}

/// A successful sweep: what was covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivReport {
    /// Coverage mode of the sweep.
    pub mode: SweepMode,
    /// Input vectors driven (one wave each, pipelined back-to-back).
    pub waves: usize,
}

/// A minimal failing stimulus, produced by the shrinker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The minimal wave set that still reproduces a mismatch.
    pub waves: Vec<Vec<bool>>,
    /// Output index of the mismatch.
    pub output: usize,
    /// Wave index (within `waves`) of the mismatch.
    pub wave: usize,
    /// What the pulse simulation produced.
    pub got: bool,
    /// What the reference evaluation expects.
    pub want: bool,
}

fn wave_bits(wave: &[bool]) -> String {
    wave.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output {} of wave {} got {}, want {}; minimal stimulus {} wave(s): [{}]",
            self.output,
            self.wave,
            u8::from(self.got),
            u8::from(self.want),
            self.waves.len(),
            self.waves
                .iter()
                .map(|w| wave_bits(w))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Equivalence-check failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// The reference and the timed network disagree on interface width
    /// before any vector was driven.
    Interface {
        /// Which side of the interface (`"input"` or `"output"`).
        kind: &'static str,
        /// Count on the reference side.
        reference: usize,
        /// Count on the timed side.
        timed: usize,
    },
    /// The pulse simulation itself failed (hazards, malformed stimulus).
    Sim(SimError),
    /// The timed network computed a different function; carries the shrunk
    /// stimulus.
    Mismatch(Counterexample),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Interface {
                kind,
                reference,
                timed,
            } => write!(
                f,
                "interface mismatch: reference has {reference} {kind}(s), timed network {timed}"
            ),
            EquivError::Sim(e) => write!(f, "pulse simulation failed: {e}"),
            EquivError::Mismatch(cx) => write!(f, "pulse mismatch: {cx}"),
        }
    }
}

impl std::error::Error for EquivError {}

impl From<SimError> for EquivError {
    fn from(e: SimError) -> Self {
        EquivError::Sim(e)
    }
}

/// Checks the timed network against its own synchronous function
/// (`Network::simulate` over the same mapped cells — DFFs evaluate as
/// buffers there, so the comparison isolates the stage schedule and the
/// pulse discipline).
///
/// # Errors
/// [`EquivError::Sim`] if the pulse run hazards, [`EquivError::Mismatch`]
/// with a shrunk counterexample if any wave's outputs disagree.
pub fn check_timed(timed: &TimedNetwork, config: &EquivConfig) -> Result<EquivReport, EquivError> {
    let net = &timed.network;
    let eval = |pats: &[u64]| net.simulate(pats);
    check_with(timed, &eval, config)
}

/// Checks the timed network against the **original** AIG it was mapped
/// from — the full loop from flow output back to flow input.
///
/// # Errors
/// [`EquivError::Interface`] if the AIG and the timed network disagree on
/// input/output counts; otherwise as [`check_timed`].
pub fn check_against_aig(
    aig: &Aig,
    timed: &TimedNetwork,
    config: &EquivConfig,
) -> Result<EquivReport, EquivError> {
    let net = &timed.network;
    if aig.num_inputs() != net.num_inputs() {
        return Err(EquivError::Interface {
            kind: "input",
            reference: aig.num_inputs(),
            timed: net.num_inputs(),
        });
    }
    if aig.num_outputs() != net.num_outputs() {
        return Err(EquivError::Interface {
            kind: "output",
            reference: aig.num_outputs(),
            timed: net.num_outputs(),
        });
    }
    let eval = |pats: &[u64]| aig.simulate(pats);
    check_with(timed, &eval, config)
}

/// The shared sweep driver: build the stimulus, co-simulate, shrink on
/// mismatch. `eval` is the bit-parallel reference (one `u64` pattern word
/// per input, one per output).
fn check_with(
    timed: &TimedNetwork,
    eval: &dyn Fn(&[u64]) -> Vec<u64>,
    config: &EquivConfig,
) -> Result<EquivReport, EquivError> {
    let num_inputs = timed.network.num_inputs();
    let (mode, waves) = stimulus(num_inputs, config);
    let sim = PulseSim::new(timed);
    // Deterministic fault hook: `verify.equiv@<design>:err` flips output 0
    // of every wave, forcing the mismatch path (and the shrinker) end to
    // end. Queried once so every shrink re-run sees the same corruption.
    let corrupt = faultpt::hit("verify.equiv", timed.network.name());
    match first_mismatch(&sim, eval, num_inputs, &waves, corrupt)? {
        None => Ok(EquivReport {
            mode,
            waves: waves.len(),
        }),
        Some(seed_mismatch) => Err(EquivError::Mismatch(shrink(
            &sim,
            eval,
            num_inputs,
            waves,
            seed_mismatch,
            corrupt,
            config.shrink_budget,
        ))),
    }
}

/// `(output, wave, got, want)` of the first disagreement, if any.
type Mismatch = (usize, usize, bool, bool);

/// Streams `waves` through the pulse simulator and compares every wave
/// against the reference evaluation.
fn first_mismatch(
    sim: &PulseSim<'_>,
    eval: &dyn Fn(&[u64]) -> Vec<u64>,
    num_inputs: usize,
    waves: &[Vec<bool>],
    corrupt: bool,
) -> Result<Option<Mismatch>, SimError> {
    let mut pulse = sim.run(waves)?;
    if corrupt {
        for wave in &mut pulse {
            if let Some(bit) = wave.first_mut() {
                *bit = !*bit;
            }
        }
    }
    let expect = reference_outputs(eval, num_inputs, waves);
    for (w, (got, want)) in pulse.iter().zip(&expect).enumerate() {
        for (k, (&g, &e)) in got.iter().zip(want).enumerate() {
            if g != e {
                return Ok(Some((k, w, g, e)));
            }
        }
    }
    Ok(None)
}

/// Bit-parallel reference evaluation: packs up to 64 waves per `simulate`
/// call.
fn reference_outputs(
    eval: &dyn Fn(&[u64]) -> Vec<u64>,
    num_inputs: usize,
    waves: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    let mut out = Vec::with_capacity(waves.len());
    for chunk in waves.chunks(64) {
        let mut pats = vec![0u64; num_inputs];
        for (w, wave) in chunk.iter().enumerate() {
            for (i, &b) in wave.iter().enumerate() {
                if b {
                    pats[i] |= 1u64 << w;
                }
            }
        }
        let words = eval(&pats);
        for w in 0..chunk.len() {
            out.push(words.iter().map(|&word| word >> w & 1 == 1).collect());
        }
    }
    out
}

/// The deterministic vector sweep for `num_inputs` inputs.
fn stimulus(num_inputs: usize, config: &EquivConfig) -> (SweepMode, Vec<Vec<bool>>) {
    if num_inputs as u32 <= config.max_exhaustive_inputs {
        let total = 1usize << num_inputs;
        let waves = (0..total)
            .map(|v| (0..num_inputs).map(|i| v >> i & 1 == 1).collect())
            .collect();
        return (SweepMode::Exhaustive, waves);
    }
    let zeros = vec![false; num_inputs];
    let ones = vec![true; num_inputs];
    // Wave-pipelining boundary pairs: empty→full→empty→full stresses the
    // hand-off between adjacent waves in flight.
    let mut waves = vec![zeros.clone(), ones.clone(), zeros, ones];
    for i in 0..num_inputs {
        let mut w = vec![false; num_inputs];
        w[i] = true;
        waves.push(w);
    }
    let mut s = config.seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..config.random_waves {
        waves.push((0..num_inputs).map(|_| next() & 1 == 1).collect());
    }
    (SweepMode::Sampled, waves)
}

/// Greedy counterexample minimization: wave-set reduction, then bit
/// clearing, each candidate re-simulated. A candidate "fails" only if it
/// reproduces a *mismatch* (hazardous candidates are discarded), so the
/// final stimulus provably reproduces the reported disagreement.
fn shrink(
    sim: &PulseSim<'_>,
    eval: &dyn Fn(&[u64]) -> Vec<u64>,
    num_inputs: usize,
    full: Vec<Vec<bool>>,
    seed_mismatch: Mismatch,
    corrupt: bool,
    budget: usize,
) -> Counterexample {
    let mut spent = 0usize;
    let mut fails = |candidate: &[Vec<bool>]| -> Option<Mismatch> {
        if spent >= budget {
            return None;
        }
        spent += 1;
        first_mismatch(sim, eval, num_inputs, candidate, corrupt)
            .ok()
            .flatten()
    };

    let mut current = full;
    let mut mismatch = seed_mismatch;

    // Phase A: wave-set reduction. The single mismatching wave alone is the
    // common minimum; fall back to greedy one-at-a-time removal.
    let singleton = vec![current[mismatch.1].clone()];
    if let Some(m) = fails(&singleton) {
        current = singleton;
        mismatch = m;
    } else {
        let mut i = 0;
        while i < current.len() && current.len() > 1 {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let Some(m) = fails(&candidate) {
                current = candidate;
                mismatch = m;
            } else {
                i += 1;
            }
        }
    }

    // Phase B: clear set bits to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for w in 0..current.len() {
            for i in 0..num_inputs {
                if !current[w][i] {
                    continue;
                }
                current[w][i] = false;
                if let Some(m) = fails(&current) {
                    mismatch = m;
                    changed = true;
                } else {
                    current[w][i] = true;
                }
            }
        }
    }

    let (output, wave, got, want) = mismatch;
    Counterexample {
        waves: current,
        output,
        wave,
        got,
        want,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_core::{run_flow, FlowConfig};

    fn fa_aig() -> Aig {
        let mut aig = Aig::new("fa");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("c");
        let (s, co) = aig.full_adder(a, b, c);
        aig.output("s", s);
        aig.output("co", co);
        aig
    }

    fn wide_aig(bits: usize) -> Aig {
        let mut aig = Aig::new("wide");
        let a = aig.input_word("a", bits);
        let b = aig.input_word("b", bits);
        let mut acc = aig.const_false();
        for i in 0..bits {
            let x = aig.xor(a[i], b[i]);
            acc = aig.or(acc, x);
        }
        aig.output("ne", acc);
        aig
    }

    #[test]
    fn small_designs_sweep_exhaustively() {
        let aig = fa_aig();
        let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
        let report = check_timed(&res.timed, &EquivConfig::default()).expect("FA is equivalent");
        assert_eq!(report.mode, SweepMode::Exhaustive);
        assert_eq!(report.waves, 8, "2^3 vectors");
        let via_aig =
            check_against_aig(&aig, &res.timed, &EquivConfig::default()).expect("loop to the AIG");
        assert_eq!(via_aig, report);
    }

    #[test]
    fn wide_designs_sample_corners_walks_and_randoms() {
        let aig = wide_aig(6); // 12 inputs > 10 ⇒ sampled
        let res = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
        let config = EquivConfig::default();
        let report = check_timed(&res.timed, &config).expect("equivalent");
        assert_eq!(report.mode, SweepMode::Sampled);
        assert_eq!(report.waves, 4 + 12 + config.random_waves);
    }

    #[test]
    fn interface_mismatch_is_rejected_up_front() {
        let aig = fa_aig();
        let res = run_flow(&aig, &FlowConfig::multiphase(4)).unwrap();
        let other = wide_aig(2);
        let err = check_against_aig(&other, &res.timed, &EquivConfig::default())
            .expect_err("4 inputs vs 3");
        assert!(matches!(
            err,
            EquivError::Interface {
                kind: "input",
                reference: 4,
                timed: 3
            }
        ));
    }

    #[test]
    fn forced_mismatch_shrinks_to_a_minimal_stimulus() {
        // Drive the shrinker directly through the corruption hook the
        // fault-injection site uses: output 0 flipped on every wave. The
        // minimal reproduction is then a single all-zero wave.
        let aig = fa_aig();
        let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
        let sim = PulseSim::new(&res.timed);
        let net = &res.timed.network;
        let eval = |pats: &[u64]| net.simulate(pats);
        let (_, waves) = stimulus(3, &EquivConfig::default());
        let seed = first_mismatch(&sim, &eval, 3, &waves, true)
            .expect("clean run")
            .expect("corruption mismatches");
        let cx = shrink(&sim, &eval, 3, waves, seed, true, 512);
        assert_eq!(cx.waves, vec![vec![false, false, false]], "{cx}");
        assert_eq!((cx.output, cx.wave), (0, 0));
        assert_eq!(
            cx.to_string(),
            "output 0 of wave 0 got 1, want 0; minimal stimulus 1 wave(s): [000]"
        );
    }

    #[test]
    fn shrinking_is_deterministic() {
        let aig = fa_aig();
        let res = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
        let sim = PulseSim::new(&res.timed);
        let net = &res.timed.network;
        let eval = |pats: &[u64]| net.simulate(pats);
        let (_, waves) = stimulus(3, &EquivConfig::default());
        let one = {
            let seed = first_mismatch(&sim, &eval, 3, &waves, true)
                .unwrap()
                .unwrap();
            shrink(&sim, &eval, 3, waves.clone(), seed, true, 512)
        };
        let two = {
            let seed = first_mismatch(&sim, &eval, 3, &waves, true)
                .unwrap()
                .unwrap();
            shrink(&sim, &eval, 3, waves, seed, true, 512)
        };
        assert_eq!(one, two);
    }
}
