//! Value-change-dump (VCD) export of pulse traces.
//!
//! SFQ debugging in practice happens in waveform viewers; this module turns
//! a [`PulseTrace`] into an IEEE-1364 VCD file that GTKWave & co. load
//! directly. Each simulator tick occupies two timescale units: a pulse on a
//! pin renders as a `1` at `2·tick` followed by a `0` at `2·tick + 1`, so
//! pulses in adjacent ticks stay visually distinct.
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_netlist::Aig;
//! use sfq_sim::{vcd, PulseSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let (s, c) = aig.half_adder(a, b);
//! aig.output("s", s);
//! aig.output("c", c);
//! let flow = run_flow(&aig, &FlowConfig::multiphase(4))?;
//!
//! let sim = PulseSim::new(&flow.timed);
//! let (_, trace) = sim.run_traced(&[vec![true, true]])?;
//! let dump = vcd::render_vcd(&flow.timed, &trace);
//! assert!(dump.starts_with("$date"));
//! assert!(dump.contains("$var wire 1"));
//! # Ok(())
//! # }
//! ```

use crate::pulse::PulseTrace;
use sfq_core::TimedNetwork;
use sfq_netlist::{CellKind, Signal, T1Port};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A VCD identifier code: the printable-ASCII base-94 encoding the format
/// prescribes (`!`, `"`, …).
fn id_code(mut index: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    s
}

/// Human-readable name for a pin in the dump (shared with
/// [`crate::waveform::trace_waveform`] so both renderings agree).
pub(crate) fn pin_name(timed: &TimedNetwork, pin: Signal) -> String {
    let net = &timed.network;
    let idx = pin.cell.0 as usize;
    match net.kind(pin.cell) {
        CellKind::Input => {
            let k = net
                .inputs()
                .iter()
                .position(|&i| i == pin.cell)
                .expect("input listed");
            net.input_name(k).to_string()
        }
        CellKind::Gate(g) => format!("{}_c{}", format!("{g}").to_lowercase(), idx),
        CellKind::Dff => format!("dff_c{idx}"),
        CellKind::T1 { .. } => {
            let port = T1Port::from_index(pin.port);
            format!("t1_c{idx}_{port:?}").to_lowercase()
        }
    }
}

/// Renders a pulse trace as VCD text.
///
/// Every pin that pulsed at least once gets a 1-bit wire; pins that stayed
/// silent are omitted (SFQ dumps of big nets would otherwise drown in
/// constant-zero wires).
pub fn render_vcd(timed: &TimedNetwork, trace: &PulseTrace) -> String {
    // Collect the pins that ever fired, in first-firing order.
    let mut order: Vec<Signal> = Vec::new();
    let mut codes: HashMap<Signal, String> = HashMap::new();
    for &(_, pin) in &trace.events {
        if let std::collections::hash_map::Entry::Vacant(e) = codes.entry(pin) {
            e.insert(id_code(order.len()));
            order.push(pin);
        }
    }

    let mut out = String::new();
    out.push_str("$date reproduction run $end\n");
    out.push_str("$version sfq-sim pulse simulator $end\n");
    out.push_str("$timescale 1ps $end\n");
    let _ = writeln!(out, "$scope module {} $end", timed.network.name());
    for pin in &order {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            codes[pin],
            pin_name(timed, *pin)
        );
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values: everything low.
    out.push_str("$dumpvars\n");
    for pin in &order {
        let _ = writeln!(out, "0{}", codes[pin]);
    }
    out.push_str("$end\n");

    // Pulses: 1 at 2·tick, 0 at 2·tick+1 (events are tick-sorted already).
    let mut i = 0;
    while i < trace.events.len() {
        let tick = trace.events[i].0;
        let _ = writeln!(out, "#{}", 2 * tick);
        let mut j = i;
        while j < trace.events.len() && trace.events[j].0 == tick {
            let _ = writeln!(out, "1{}", codes[&trace.events[j].1]);
            j += 1;
        }
        let _ = writeln!(out, "#{}", 2 * tick + 1);
        for k in i..j {
            let _ = writeln!(out, "0{}", codes[&trace.events[k].1]);
        }
        i = j;
    }
    let _ = writeln!(out, "#{}", 2 * (trace.last_tick + 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::PulseSim;
    use sfq_core::{run_flow, FlowConfig};
    use sfq_netlist::Aig;

    fn timed_xor() -> sfq_core::FlowResult {
        let mut aig = Aig::new("x");
        let a = aig.input("a");
        let b = aig.input("b");
        let x = aig.xor(a, b);
        aig.output("y", x);
        run_flow(&aig, &FlowConfig::multiphase(4)).expect("flow succeeds")
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            let code = id_code(i);
            assert!(
                code.bytes().all(|b| (33..127).contains(&b)),
                "printable: {code:?}"
            );
            assert!(seen.insert(code), "collision at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn vcd_contains_headers_vars_and_changes() {
        let flow = timed_xor();
        let sim = PulseSim::new(&flow.timed);
        let (outs, trace) = sim.run_traced(&[vec![true, false]]).expect("clean run");
        assert!(outs[0][0], "1 xor 0");
        let dump = render_vcd(&flow.timed, &trace);
        assert!(dump.contains("$timescale 1ps $end"));
        assert!(
            dump.contains("$var wire 1 ! a $end"),
            "input wire named:\n{dump}"
        );
        assert!(dump.contains("$dumpvars"));
        assert!(dump.contains("#0\n"), "time zero present");
        // Every 1-change has a matching 0-change one unit later.
        let ones = dump.matches("\n1").count();
        let zeros_after = dump.matches("\n0").count();
        assert!(zeros_after >= ones, "pulses return to zero");
    }

    #[test]
    fn silent_pins_are_omitted() {
        let flow = timed_xor();
        let sim = PulseSim::new(&flow.timed);
        // 1 xor 1: inputs pulse, the XOR gate output stays silent.
        let (outs, trace) = sim.run_traced(&[vec![true, true]]).expect("clean run");
        assert!(!outs[0][0]);
        let dump = render_vcd(&flow.timed, &trace);
        assert!(dump.contains(" a $end"));
        assert!(!dump.contains("xor2"), "silent XOR output omitted:\n{dump}");
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let flow = timed_xor();
        let sim = PulseSim::new(&flow.timed);
        let waves = vec![vec![true, false], vec![false, false], vec![true, true]];
        let plain = sim.run(&waves).expect("clean");
        let (traced, _) = sim.run_traced(&waves).expect("clean");
        assert_eq!(plain, traced);
    }
}
