//! Property-based end-to-end testing: random AIGs through every flow.
//!
//! The flow self-verifies (structural timing audit + bit-parallel
//! equivalence over 256 random vectors), so the property "run_flow returns
//! Ok" already covers the paper's correctness claims; on top of that we
//! cross-check the pulse-level simulator and the engines against each other.

use proptest::prelude::*;
use sfq_t1::netlist::Aig;
use sfq_t1::prelude::*;

/// A recipe for one random AIG node.
#[derive(Debug, Clone)]
enum Op {
    And(usize, usize, bool, bool),
    Xor(usize, usize),
    Maj(usize, usize, usize),
    FullAdder(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ca, cb)| Op::And(a, b, ca, cb)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(a, b, c)| Op::Maj(a, b, c)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| Op::FullAdder(a, b, c)),
    ]
}

/// Materializes a recipe into an AIG; indices select among existing
/// literals modulo the pool size, so every recipe is valid by construction.
fn build_aig(num_inputs: usize, ops: &[Op], num_outputs: usize) -> Aig {
    let mut aig = Aig::new("random");
    let mut pool: Vec<AigLit> = (0..num_inputs)
        .map(|i| aig.input(format!("i{i}")))
        .collect();
    for op in ops {
        let lit = |idx: usize, pool: &[AigLit]| pool[idx % pool.len()];
        let new = match *op {
            Op::And(a, b, ca, cb) => {
                let (mut x, mut y) = (lit(a, &pool), lit(b, &pool));
                if ca {
                    x = !x;
                }
                if cb {
                    y = !y;
                }
                aig.and(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (lit(a, &pool), lit(b, &pool));
                aig.xor(x, y)
            }
            Op::Maj(a, b, c) => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                aig.maj(x, y, z)
            }
            Op::FullAdder(a, b, c) => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                let (s, co) = aig.full_adder(x, y, z);
                pool.push(s);
                co
            }
        };
        pool.push(new);
    }
    for k in 0..num_outputs {
        let lit = pool[pool.len() - 1 - (k % pool.len().min(8))];
        aig.output(format!("o{k}"), lit);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_networks_survive_all_flows(
        num_inputs in 3usize..7,
        ops in prop::collection::vec(op_strategy(), 4..40),
        num_outputs in 1usize..4,
    ) {
        let aig = build_aig(num_inputs, &ops, num_outputs);
        for config in [FlowConfig::single_phase(), FlowConfig::multiphase(4), FlowConfig::t1(4)] {
            // Ok(_) ⇒ audit passed and 256-vector equivalence held.
            let result = run_flow(&aig, &config);
            prop_assert!(result.is_ok(), "flow failed: {:?}", result.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn pulse_simulation_agrees_with_boolean_simulation(
        num_inputs in 3usize..6,
        ops in prop::collection::vec(op_strategy(), 4..24),
        wave_seed in any::<u64>(),
    ) {
        let aig = build_aig(num_inputs, &ops, 2);
        let result = run_flow(&aig, &FlowConfig::t1(4)).expect("flow succeeds");
        let mut seed = wave_seed | 1;
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let waves: Vec<Vec<bool>> = (0..4)
            .map(|_| (0..aig.num_inputs()).map(|_| next() >> 40 & 1 == 1).collect())
            .collect();
        let outs = simulate_waves(&result.timed, &waves).expect("no hazards");
        for (w, (ins, got)) in waves.iter().zip(&outs).enumerate() {
            let patterns: Vec<u64> =
                ins.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
            let want: Vec<bool> =
                aig.simulate(&patterns).iter().map(|&x| x & 1 == 1).collect();
            prop_assert_eq!(got, &want, "wave {} disagrees", w);
        }
    }

    #[test]
    fn exact_engine_never_loses_to_heuristic(
        num_inputs in 3usize..5,
        ops in prop::collection::vec(op_strategy(), 3..14),
    ) {
        use sfq_t1::core::PhaseEngine;
        let aig = build_aig(num_inputs, &ops, 2);
        let mut exact = FlowConfig::t1(4);
        exact.engine = PhaseEngine::Exact;
        exact.equivalence_words = 1;
        let mut heur = exact.clone();
        heur.engine = PhaseEngine::Heuristic;
        let re = run_flow(&aig, &exact).expect("exact flow");
        let rh = run_flow(&aig, &heur).expect("heuristic flow");
        prop_assert!(
            re.report.num_dffs <= rh.report.num_dffs,
            "exact {} > heuristic {}",
            re.report.num_dffs,
            rh.report.num_dffs
        );
    }
}
