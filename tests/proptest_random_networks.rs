//! Property-based end-to-end testing: random AIGs through every flow.
//!
//! The flow self-verifies (structural timing audit + bit-parallel
//! equivalence over 256 random vectors), so the property "run_flow returns
//! Ok" already covers the paper's correctness claims; on top of that we
//! cross-check the pulse-level simulator and the engines against each other.

use proptest::prelude::*;
use sfq_t1::netlist::Aig;
use sfq_t1::prelude::*;

/// A recipe for one random AIG node.
#[derive(Debug, Clone)]
enum Op {
    And(usize, usize, bool, bool),
    Xor(usize, usize),
    Maj(usize, usize, usize),
    FullAdder(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ca, cb)| Op::And(a, b, ca, cb)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(a, b, c)| Op::Maj(a, b, c)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| Op::FullAdder(a, b, c)),
    ]
}

/// Materializes a recipe into an AIG; indices select among existing
/// literals modulo the pool size, so every recipe is valid by construction.
fn build_aig(num_inputs: usize, ops: &[Op], num_outputs: usize) -> Aig {
    let mut aig = Aig::new("random");
    let mut pool: Vec<AigLit> = (0..num_inputs)
        .map(|i| aig.input(format!("i{i}")))
        .collect();
    for op in ops {
        let lit = |idx: usize, pool: &[AigLit]| pool[idx % pool.len()];
        let new = match *op {
            Op::And(a, b, ca, cb) => {
                let (mut x, mut y) = (lit(a, &pool), lit(b, &pool));
                if ca {
                    x = !x;
                }
                if cb {
                    y = !y;
                }
                aig.and(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (lit(a, &pool), lit(b, &pool));
                aig.xor(x, y)
            }
            Op::Maj(a, b, c) => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                aig.maj(x, y, z)
            }
            Op::FullAdder(a, b, c) => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                let (s, co) = aig.full_adder(x, y, z);
                pool.push(s);
                co
            }
        };
        pool.push(new);
    }
    for k in 0..num_outputs {
        let lit = pool[pool.len() - 1 - (k % pool.len().min(8))];
        aig.output(format!("o{k}"), lit);
    }
    aig
}

/// A recipe for one cell of a degenerate [`Network`] (the `cleaned`
/// stress generator): gates may read the *same* signal on both pins,
/// inverter chains go arbitrarily deep, and some cells are built dangling
/// (never reachable from any primary output).
#[derive(Debug, Clone)]
enum NetOp {
    /// Binary gate over pool picks — `a == b` (duplicate fanins) is allowed
    /// and, for XOR/XNOR/AND, yields constant or pass-through functions.
    Gate(u8, usize, usize),
    /// A chain of 1–12 inverters (deep inverter chains survive `cleaned`
    /// untouched when live; die wholesale when dangling).
    InvChain(usize, u8),
    /// Path-balancing DFF on a pool pick.
    Dff(usize),
    /// A gate built and immediately forgotten — a dangling cell.
    Dangling(u8, usize, usize),
}

fn netop_strategy() -> impl Strategy<Value = NetOp> {
    prop_oneof![
        (any::<u8>(), any::<usize>(), any::<usize>()).prop_map(|(g, a, b)| NetOp::Gate(g, a, b)),
        (any::<usize>(), 1u8..12).prop_map(|(a, d)| NetOp::InvChain(a, d)),
        any::<usize>().prop_map(NetOp::Dff),
        (any::<u8>(), any::<usize>(), any::<usize>())
            .prop_map(|(g, a, b)| NetOp::Dangling(g, a, b)),
    ]
}

/// Materializes a degenerate-network recipe; indices select among existing
/// signals modulo the pool size, so every recipe is valid by construction.
fn build_degenerate_network(num_inputs: usize, ops: &[NetOp], num_outputs: usize) -> Network {
    use sfq_t1::netlist::GateKind;
    const BINARY: [GateKind; 6] = [
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xnor2,
    ];
    let mut net = Network::new("degenerate");
    let mut pool: Vec<sfq_t1::netlist::Signal> = (0..num_inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect();
    for op in ops {
        let pick = |idx: usize, pool: &[sfq_t1::netlist::Signal]| pool[idx % pool.len()];
        match *op {
            NetOp::Gate(g, a, b) => {
                let kind = BINARY[g as usize % BINARY.len()];
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                let s = net.add_gate(kind, &[x, y]);
                pool.push(s);
            }
            NetOp::InvChain(a, depth) => {
                let mut s = pick(a, &pool);
                for _ in 0..depth {
                    s = net.add_gate(GateKind::Inv, &[s]);
                }
                pool.push(s);
            }
            NetOp::Dff(a) => {
                let s = net.add_dff(pick(a, &pool));
                pool.push(s);
            }
            NetOp::Dangling(g, a, b) => {
                let kind = BINARY[g as usize % BINARY.len()];
                let (x, y) = (pick(a, &pool), pick(b, &pool));
                net.add_gate(kind, &[x, y]); // never enters the pool
            }
        }
    }
    for k in 0..num_outputs {
        let s = pool[pool.len() - 1 - (k % pool.len().min(8))];
        net.add_output(format!("o{k}"), s);
    }
    net
}

/// Bit-identity over every observable field of two networks.
fn networks_identical(a: &Network, b: &Network) -> bool {
    a.num_cells() == b.num_cells()
        && a.outputs() == b.outputs()
        && a.cell_ids()
            .all(|id| a.kind(id) == b.kind(id) && a.fanins(id) == b.fanins(id))
        && (0..a.num_outputs()).all(|k| a.output_name(k) == b.output_name(k))
        && (0..a.num_inputs()).all(|k| a.input_name(k) == b.input_name(k))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_networks_survive_all_flows(
        num_inputs in 3usize..7,
        ops in prop::collection::vec(op_strategy(), 4..40),
        num_outputs in 1usize..4,
    ) {
        let aig = build_aig(num_inputs, &ops, num_outputs);
        for config in [FlowConfig::single_phase(), FlowConfig::multiphase(4), FlowConfig::t1(4)] {
            // Ok(_) ⇒ audit passed and 256-vector equivalence held.
            let result = run_flow(&aig, &config);
            prop_assert!(result.is_ok(), "flow failed: {:?}", result.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn pulse_simulation_agrees_with_boolean_simulation(
        num_inputs in 3usize..6,
        ops in prop::collection::vec(op_strategy(), 4..24),
        wave_seed in any::<u64>(),
    ) {
        let aig = build_aig(num_inputs, &ops, 2);
        let result = run_flow(&aig, &FlowConfig::t1(4)).expect("flow succeeds");
        let mut seed = wave_seed | 1;
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let waves: Vec<Vec<bool>> = (0..4)
            .map(|_| (0..aig.num_inputs()).map(|_| next() >> 40 & 1 == 1).collect())
            .collect();
        let outs = simulate_waves(&result.timed, &waves).expect("no hazards");
        for (w, (ins, got)) in waves.iter().zip(&outs).enumerate() {
            let patterns: Vec<u64> =
                ins.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
            let want: Vec<bool> =
                aig.simulate(&patterns).iter().map(|&x| x & 1 == 1).collect();
            prop_assert_eq!(got, &want, "wave {} disagrees", w);
        }
    }

    #[test]
    fn exact_engine_never_loses_to_heuristic(
        num_inputs in 3usize..5,
        ops in prop::collection::vec(op_strategy(), 3..14),
    ) {
        use sfq_t1::core::PhaseEngine;
        let aig = build_aig(num_inputs, &ops, 2);
        let mut exact = FlowConfig::t1(4);
        exact.engine = PhaseEngine::Exact;
        exact.equivalence_words = 1;
        let mut heur = exact.clone();
        heur.engine = PhaseEngine::Heuristic;
        let re = run_flow(&aig, &exact).expect("exact flow");
        let rh = run_flow(&aig, &heur).expect("heuristic flow");
        prop_assert!(
            re.report.num_dffs <= rh.report.num_dffs,
            "exact {} > heuristic {}",
            re.report.num_dffs,
            rh.report.num_dffs
        );
    }

    /// `cleaned` on arbitrarily degenerate networks (duplicate fanins, deep
    /// inverter chains, dangling cells) is idempotent — a second pass
    /// removes nothing and reproduces the same network bit for bit — and
    /// matches the reference implementation.
    #[test]
    fn cleaned_is_idempotent_on_degenerate_networks(
        num_inputs in 2usize..6,
        ops in prop::collection::vec(netop_strategy(), 1..40),
        num_outputs in 1usize..5,
    ) {
        let net = build_degenerate_network(num_inputs, &ops, num_outputs);
        net.validate().expect("generator builds valid networks");
        let (once, _removed) = net.cleaned();
        let (once_ref, removed_ref) = net.cleaned_reference();
        prop_assert!(networks_identical(&once, &once_ref), "cleaned != cleaned_reference");
        let (twice, removed_again) = once.cleaned();
        prop_assert_eq!(removed_again, 0, "second clean removed cells");
        prop_assert!(networks_identical(&once, &twice), "cleaned not idempotent");
        // The count bookkeeping is consistent: everything removed once is
        // gone, nothing reachable was touched.
        prop_assert_eq!(once.num_cells() + _removed, net.num_cells());
        prop_assert_eq!(once.num_cells() + removed_ref, net.num_cells());
    }

    /// `cleaned` preserves every primary-output truth table of degenerate
    /// networks: dead logic disappears, live logic computes bit-identically.
    #[test]
    fn cleaned_preserves_po_truth_tables(
        num_inputs in 2usize..6,
        ops in prop::collection::vec(netop_strategy(), 1..40),
        num_outputs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let net = build_degenerate_network(num_inputs, &ops, num_outputs);
        let (clean, _) = net.cleaned();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..4 {
            let patterns: Vec<u64> = (0..net.num_inputs()).map(|_| next()).collect();
            prop_assert_eq!(
                net.simulate(&patterns),
                clean.simulate(&patterns),
                "cleaned changed a PO function"
            );
        }
    }

    /// Degenerate *AIGs* — constant outputs, cancelling literals, duplicated
    /// and complemented outputs — map identically through the optimized and
    /// reference mappers, and the mapped network computes the AIG's function.
    #[test]
    fn degenerate_aigs_map_identically(
        num_inputs in 2usize..5,
        ops in prop::collection::vec(op_strategy(), 1..16),
        flavor in any::<u8>(),
    ) {
        let mut aig = build_aig(num_inputs, &ops, 2);
        // Constant nodes / cancelling literals: x AND NOT x, x XOR x.
        let x = aig.outputs()[0];
        let cancel = aig.and(x, !x);
        aig.output("cancel", cancel);
        if flavor & 1 == 1 {
            aig.output("const1", aig.const_true());
        }
        if flavor & 2 == 2 {
            aig.output("const0", aig.const_false());
        }
        // Complemented duplicate of an existing output (deep INV pressure).
        aig.output("dup_neg", !x);
        let lib = Library::default();
        let new = map_aig(&aig, &lib);
        let old = sfq_t1::netlist::map_aig_reference(&aig, &lib);
        prop_assert!(networks_identical(&new, &old), "map_aig != map_aig_reference");
        for round in 0u32..2 {
            let patterns: Vec<u64> = (0..aig.num_inputs()).map(|i| {
                0x9E37_79B9_7F4A_7C15u64
                    .rotate_left((i as u32).wrapping_mul(7) + u32::from(flavor) + round * 13)
            }).collect();
            prop_assert_eq!(aig.simulate(&patterns), new.simulate(&patterns));
        }
    }
}
