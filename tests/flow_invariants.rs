//! End-to-end flow invariants across the whole benchmark suite (scaled-down
//! instances): every flow must audit cleanly and preserve function, and the
//! Table I trends the paper reports must hold in shape.

use sfq_t1::prelude::*;

/// Runs the three Table I flows on one AIG.
fn three_flows(aig: &sfq_t1::netlist::Aig) -> [FlowReport; 3] {
    let r1 = run_flow(aig, &FlowConfig::single_phase())
        .expect("1φ flow")
        .report;
    let r4 = run_flow(aig, &FlowConfig::multiphase(4))
        .expect("4φ flow")
        .report;
    let rt = run_flow(aig, &FlowConfig::t1(4)).expect("T1 flow").report;
    [r1, r4, rt]
}

#[test]
fn all_benchmarks_pass_all_flows_small() {
    for bench in Benchmark::ALL {
        let aig = bench.build_small();
        // run_flow audits and equivalence-checks internally; reaching here
        // means the flow is structurally and functionally sound.
        let [r1, r4, rt] = three_flows(&aig);

        // Multiphase clocking always reduces path-balancing DFFs vs 1φ
        // (the ASP-DAC'24 result the paper builds on).
        assert!(
            r4.num_dffs < r1.num_dffs,
            "{}: 4φ must beat 1φ on DFFs ({} vs {})",
            bench.name(),
            r4.num_dffs,
            r1.num_dffs
        );
        assert!(
            r4.area < r1.area,
            "{}: 4φ must beat 1φ on area ({} vs {})",
            bench.name(),
            r4.area,
            r1.area
        );
        // T1 commits only if it helps; the T1 flow can never be *worse*
        // than 1φ on area.
        assert!(
            rt.area < r1.area,
            "{}: T1 must beat 1φ on area ({} vs {})",
            bench.name(),
            rt.area,
            r1.area
        );
        // Depth in cycles shrinks with multiphase clocking vs 1φ.
        assert!(
            rt.depth_cycles <= r1.depth_cycles,
            "{}: T1 depth {} vs 1φ depth {}",
            bench.name(),
            rt.depth_cycles,
            r1.depth_cycles
        );
    }
}

#[test]
fn fa_rich_benchmarks_commit_t1_cells() {
    // The paper's found/used columns are non-zero on every row; the
    // FA-dominated designs commit nearly everything they find.
    for bench in [
        Benchmark::Adder,
        Benchmark::C6288,
        Benchmark::Voter,
        Benchmark::Square,
        Benchmark::Multiplier,
    ] {
        let aig = bench.build_small();
        let rt = run_flow(&aig, &FlowConfig::t1(4)).expect("T1 flow").report;
        assert!(rt.t1_found > 0, "{}: no T1 candidates found", bench.name());
        assert!(rt.t1_used > 0, "{}: no T1 cells committed", bench.name());
        assert!(rt.t1_used <= rt.t1_found, "{}: used > found", bench.name());
    }
}

#[test]
fn adder_shows_the_paper_headline_shape() {
    // Paper: the adder is the showcase — almost every FA becomes a T1 cell
    // and area drops 25 % vs 4φ (80 % vs 1φ).
    let bits = 32;
    let aig = sfq_t1::circuits::adder(bits);
    let [r1, r4, rt] = three_flows(&aig);

    // One T1 per full adder along the ripple chain; the greedy
    // non-overlapping commit may sacrifice one group where the carry-chain
    // MFFCs contend (paper: 127 of 127 on their 128-bit netlist; ours
    // typically commits bits−2 of bits−1 found).
    assert!(
        rt.t1_used >= bits - 2,
        "nearly one T1 per ripple FA, got {}",
        rt.t1_used
    );

    let vs1 = rt.area as f64 / r1.area as f64;
    let vs4 = rt.area as f64 / r4.area as f64;
    assert!(vs1 < 0.55, "T1 vs 1φ area ratio {vs1:.2} (paper: 0.20)");
    assert!(vs4 < 1.00, "T1 vs 4φ area ratio {vs4:.2} (paper: 0.75)");

    // Depth. The ripple carry must cross one T1 stage per bit, and the first
    // T1 cannot fire before stage 3 (eq. 3), so σ_out ≥ bits + 2.
    let structural_floor = (bits as u32 + 2).div_ceil(4);
    assert!(
        rt.depth_cycles >= structural_floor,
        "T1 depth {} below the carry-chain floor {structural_floor}",
        rt.depth_cycles
    );
    // Known deviation from the paper (EXPERIMENTS.md): the paper's baseline
    // netlist advances the ripple carry one *cell* per bit (their 1φ depth =
    // 128 on the 128-bit adder), so T1 ordering stages cost it depth
    // (32 → 33 cycles). Our baseline decomposes the carry into two 2-input
    // levels per bit, so collapsing an FA into one T1 cell *shortens* the
    // critical path instead of stretching it. Pin that behaviour here.
    assert!(
        rt.depth_cycles <= r4.depth_cycles,
        "on a 2-input-decomposed ripple baseline the T1 flow shortens the \
         carry path ({} vs 4φ {})",
        rt.depth_cycles,
        r4.depth_cycles
    );
}

#[test]
fn single_phase_flow_equals_classic_path_balancing() {
    // With n = 1 every edge must span exactly one stage, so the DFF count
    // is the classic ∑(level differences) bound.
    let aig = sfq_t1::circuits::adder(8);
    let result = run_flow(&aig, &FlowConfig::single_phase()).expect("1φ flow");
    let timed = &result.timed;
    // Every non-input cell at stage = level; POs aligned at max level.
    let net = &timed.network;
    let levels = net.levels();
    for id in net.cell_ids() {
        if net.kind(id).is_clocked() {
            assert_eq!(
                timed.stage(id),
                levels[id.0 as usize],
                "1φ stages are exactly the levelization"
            );
        }
    }
}

#[test]
fn t1_flow_depth_stays_in_a_bounded_envelope_of_multiphase() {
    // Paper Table I observes depth ratios vs 4φ of 1.00–1.25 on its rows.
    // That direction is *not* a structural invariant of the method: a T1
    // cell replaces a cone of up to two mapped levels while advancing its
    // latest fanin by exactly one stage (eq. 3), so on a baseline whose FA
    // cones are decomposed into 2-input gates the T1 flow can shorten
    // critical paths by up to ~2× — and does, on our ripple adders (see
    // EXPERIMENTS.md, deviation note). What must hold on both sides:
    //
    // * lower: the T1 flow can never beat the 2× cone compression, so
    //   `depth(T1) ≥ ⌈depth(4φ)/2⌉ − 1`;
    // * upper: the paper's ≈1.25× penalty envelope, with rounding slack.
    for bench in [Benchmark::Adder, Benchmark::C6288, Benchmark::Voter] {
        let aig = bench.build_small();
        let r4 = run_flow(&aig, &FlowConfig::multiphase(4))
            .expect("4φ")
            .report;
        let rt = run_flow(&aig, &FlowConfig::t1(4)).expect("T1").report;
        assert!(
            rt.depth_cycles + 1 >= r4.depth_cycles.div_ceil(2),
            "{}: T1 depth {} collapsed below half the 4φ depth {}",
            bench.name(),
            rt.depth_cycles,
            r4.depth_cycles
        );
        assert!(
            rt.depth_cycles <= r4.depth_cycles * 3 / 2 + 1,
            "{}: T1 depth {} blew past the paper's ≈1.25× envelope over {}",
            bench.name(),
            rt.depth_cycles,
            r4.depth_cycles
        );
    }
}

#[test]
fn gain_threshold_monotonically_prunes_candidates() {
    let aig = sfq_t1::circuits::multiplier(6);
    let mut last_found = usize::MAX;
    let mut last_used = usize::MAX;
    for theta in [0i64, 15, 40, 1_000_000] {
        let mut config = FlowConfig::t1(4);
        config.gain_threshold = theta;
        let r = run_flow(&aig, &config).expect("flow").report;
        assert!(r.t1_found <= last_found, "found count rises with θ={theta}");
        assert!(r.t1_used <= last_used, "used count rises with θ={theta}");
        last_found = r.t1_found;
        last_used = r.t1_used;
    }
    assert_eq!(last_used, 0, "θ=∞ recovers the plain 4φ flow");
}

#[test]
fn phase_count_sweep_reduces_dffs() {
    // More phases ⇒ longer pulse lifetime in stages ⇒ fewer balancing DFFs
    // (the multiphase premise, DESIGN.md §2.2).
    let aig = sfq_t1::circuits::adder(16);
    let mut prev = usize::MAX;
    for n in [1u8, 2, 4, 8] {
        let r = run_flow(&aig, &FlowConfig::multiphase(n))
            .expect("flow")
            .report;
        assert!(
            r.num_dffs <= prev,
            "n={n}: DFFs {} should not exceed n/2's {prev}",
            r.num_dffs
        );
        prev = r.num_dffs;
    }
}

#[test]
fn t1_needs_at_least_four_phases() {
    // Three distinct arrival slots + the firing slot don't fit in n < 4
    // within one period window [σ−(n−1), σ−1].
    let aig = sfq_t1::circuits::adder(8);
    for n in [2u8, 3] {
        let r = run_flow(&aig, &FlowConfig::t1(n)).expect("flow").report;
        assert_eq!(r.t1_used, 0, "n={n} cannot host a T1 cell");
    }
    let r4 = run_flow(&aig, &FlowConfig::t1(4)).expect("flow").report;
    assert!(r4.t1_used > 0, "n=4 hosts T1 cells");
}
