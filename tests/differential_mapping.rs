//! Differential equivalence harness for the flow's hot-path overhauls
//! (map/detect/cleaned since ISSUE 2, cut enumeration since ISSUE 3,
//! phase/dff since ISSUE 4).
//!
//! Every optimized stage keeps its original implementation alive as an
//! executable specification ([`map_aig_reference`], [`detect_t1_reference`],
//! [`Network::cleaned_reference`], [`assign_phases_reference`],
//! [`insert_dffs_reference`]). This harness runs old vs. new across
//! every `sfq-circuits` benchmark generator (Table I set and the extended
//! set) and asserts:
//!
//! * **structural identity** — bit-identical networks: same cells in the
//!   same order, same kinds, same fanins, same outputs and names;
//! * **identical LUT counts** — `num_gates`/`num_t1`/`num_dffs` agree (a
//!   weaker, human-readable view of the same fact, asserted separately so a
//!   structural failure message still reports the aggregate drift);
//! * **identical T1 groups** — found/used counts and every committed group's
//!   leaves, polarity mask, roots, ports, gain and dead set;
//! * **identical timing** — bit-identical `StageAssignment`s from the
//!   timing-engine descent vs. the reference descent, and bit-identical
//!   `TimedNetwork`s (stages, phases, epochs, DFF counts, JJ area) from the
//!   planned emission vs. the reference insertion, plus a clean audit;
//! * **identical truth tables** — functional equivalence of every stage
//!   against the source AIG: exhaustive simulation for ≤ 10-input designs,
//!   sampled 64-bit vectors above.
//!
//! The fast tier (`build_small`) runs in the normal test pass; the paper-
//! scale tier is `#[ignore]`d and exercised by the CI `differential-slow`
//! job (`cargo test --release --test differential_mapping -- --ignored`).

use sfq_circuits::{Benchmark, ExtBenchmark};
use sfq_core::{
    assign_phases, assign_phases_reference, assign_phases_with_restarts, detect_t1,
    detect_t1_reference, insert_dffs, insert_dffs_reference, PhaseEngine, TimedNetwork,
};
use sfq_netlist::{
    enumerate_cuts, enumerate_cuts_sequential, map_aig, map_aig_reference, Aig, CutConfig, Library,
    Network,
};

/// Inputs at or below this count are simulated exhaustively.
const EXHAUSTIVE_INPUTS: usize = 10;
/// Sampled 64-bit vector words per input above the exhaustive bound.
const SAMPLE_WORDS: usize = 16;

/// Asserts two networks are bit-identical (cells, kinds, fanins, outputs,
/// names) — the strongest statement the differential harness makes.
fn assert_identical(name: &str, stage: &str, a: &Network, b: &Network) {
    assert_eq!(a.name(), b.name(), "{name}/{stage}: design name");
    assert_eq!(
        a.num_cells(),
        b.num_cells(),
        "{name}/{stage}: cell count (new {} vs reference {})",
        a.num_cells(),
        b.num_cells()
    );
    assert_eq!(a.num_gates(), b.num_gates(), "{name}/{stage}: LUT count");
    assert_eq!(a.num_t1(), b.num_t1(), "{name}/{stage}: T1 cell count");
    assert_eq!(a.num_dffs(), b.num_dffs(), "{name}/{stage}: DFF count");
    for id in a.cell_ids() {
        assert_eq!(a.kind(id), b.kind(id), "{name}/{stage}: kind of {id:?}");
        assert_eq!(
            a.fanins(id),
            b.fanins(id),
            "{name}/{stage}: fanins of {id:?}"
        );
    }
    assert_eq!(a.outputs(), b.outputs(), "{name}/{stage}: output signals");
    for k in 0..a.num_outputs() {
        assert_eq!(
            a.output_name(k),
            b.output_name(k),
            "{name}/{stage}: output name {k}"
        );
    }
    for k in 0..a.num_inputs() {
        assert_eq!(
            a.input_name(k),
            b.input_name(k),
            "{name}/{stage}: input name {k}"
        );
    }
}

/// Deterministic xorshift64* stream for the sampled tier.
fn rng_stream(mut seed: u64) -> impl FnMut() -> u64 {
    seed |= 1;
    move || {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Checks `net` computes the same function as `aig`: exhaustively when the
/// design has ≤ [`EXHAUSTIVE_INPUTS`] inputs, over sampled 64-bit vectors
/// otherwise.
fn assert_equivalent(name: &str, stage: &str, aig: &Aig, net: &Network) {
    let n = aig.num_inputs();
    assert_eq!(net.num_inputs(), n, "{name}/{stage}: input count");
    if n <= EXHAUSTIVE_INPUTS {
        // Exhaustive: all 2^n rows, 64 rows per simulation word.
        let rows = 1usize << n;
        let mut row = 0usize;
        while row < rows {
            let chunk = (rows - row).min(64);
            let patterns: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for j in 0..chunk {
                        if (row + j) >> i & 1 == 1 {
                            w |= 1 << j;
                        }
                    }
                    w
                })
                .collect();
            let want = aig.simulate(&patterns);
            let got = net.simulate(&patterns);
            let mask = if chunk == 64 {
                u64::MAX
            } else {
                (1 << chunk) - 1
            };
            for (k, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    w & mask,
                    g & mask,
                    "{name}/{stage}: output {k} differs on exhaustive rows {row}..{}",
                    row + chunk
                );
            }
            row += chunk;
        }
    } else {
        // Sampled: deterministic 64-bit vectors, seeded per design name so
        // failures reproduce.
        let seed = name.bytes().fold(0xDEAD_BEEFu64, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        });
        let mut next = rng_stream(seed);
        for round in 0..SAMPLE_WORDS {
            let patterns: Vec<u64> = (0..n).map(|_| next()).collect();
            let want = aig.simulate(&patterns);
            let got = net.simulate(&patterns);
            for (k, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    w, g,
                    "{name}/{stage}: output {k} differs on sampled round {round}"
                );
            }
        }
    }
}

/// Asserts the dispatching [`enumerate_cuts`] agrees with the sequential
/// executable specification node-for-node. With `--features parallel` on a
/// multi-core host (or with `SFQ_WORKERS` forced above 1) this A/Bs the
/// level-parallel driver; otherwise it pins determinism of the dispatch.
fn assert_cuts_match_sequential(name: &str, net: &Network, cut_config: &CutConfig) {
    let ab = enumerate_cuts(net, cut_config);
    let seq = enumerate_cuts_sequential(net, cut_config);
    assert_eq!(ab.total(), seq.total(), "{name}/cuts: total cut count");
    for id in net.cell_ids() {
        assert_eq!(ab.of(id), seq.of(id), "{name}/cuts: cut set of {id:?}");
    }
}

/// The full old-vs-new pipeline comparison for one AIG.
fn check_design(name: &str, aig: &Aig) {
    let lib = Library::default();
    let cut_config = CutConfig::default();

    // ---- map ----
    let mapped_new = map_aig(aig, &lib);
    let mapped_old = map_aig_reference(aig, &lib);
    assert_identical(name, "map", &mapped_new, &mapped_old);
    assert_equivalent(name, "map", aig, &mapped_new);

    // ---- cleaned ----
    let (clean_new, removed_new) = mapped_new.cleaned();
    let (clean_old, removed_old) = mapped_new.cleaned_reference();
    assert_eq!(removed_new, removed_old, "{name}/cleaned: removed count");
    assert_identical(name, "cleaned", &clean_new, &clean_old);
    assert_equivalent(name, "cleaned", aig, &clean_new);

    // ---- cuts (parallel vs sequential enumeration) ----
    assert_cuts_match_sequential(name, &clean_new, &cut_config);

    // ---- detect ----
    let det_new = detect_t1(&clean_new, &lib, &cut_config);
    let det_old = detect_t1_reference(&clean_new, &lib, &cut_config);
    assert_eq!(det_new.found, det_old.found, "{name}/detect: found");
    assert_eq!(det_new.used, det_old.used, "{name}/detect: used");
    assert_eq!(
        det_new.groups.len(),
        det_old.groups.len(),
        "{name}/detect: committed group count"
    );
    for (i, (gn, go)) in det_new.groups.iter().zip(&det_old.groups).enumerate() {
        assert_eq!(gn.leaves, go.leaves, "{name}/detect: group {i} leaves");
        assert_eq!(
            gn.input_mask, go.input_mask,
            "{name}/detect: group {i} mask"
        );
        assert_eq!(gn.roots, go.roots, "{name}/detect: group {i} roots");
        assert_eq!(
            gn.used_ports, go.used_ports,
            "{name}/detect: group {i} ports"
        );
        assert_eq!(gn.gain, go.gain, "{name}/detect: group {i} gain");
        assert_eq!(gn.dead, go.dead, "{name}/detect: group {i} dead set");
    }
    assert_identical(name, "detect", &det_new.network, &det_old.network);
    assert_equivalent(name, "detect", aig, &det_new.network);

    // ---- phase (timing engine vs reference descent) ----
    let subject = &det_new.network;
    let n = 4u8;
    let asg_eng = assign_phases(subject, n, PhaseEngine::Heuristic).expect("engine feasible");
    let asg_ref =
        assign_phases_reference(subject, n, PhaseEngine::Heuristic).expect("reference feasible");
    assert_eq!(
        asg_eng, asg_ref,
        "{name}/phase: engine vs reference StageAssignment"
    );

    // ---- dff (planned emission vs reference insertion) ----
    let timed_eng = insert_dffs(subject, &asg_eng, n).expect("engine insertable");
    let timed_ref = insert_dffs_reference(subject, &asg_eng, n).expect("reference insertable");
    assert_timed_identical(name, &timed_eng, &timed_ref);
    timed_eng
        .audit()
        .unwrap_or_else(|e| panic!("{name}/dff: engine-emitted network failed the audit: {e}"));
    assert_equivalent(name, "dff", aig, &timed_eng.network);
}

/// Asserts two timed networks are bit-identical: the underlying networks,
/// the per-cell stage vector (hence every phase `σ mod n` and epoch
/// `σ div n`), the common output stage, the DFF count and the JJ area.
fn assert_timed_identical(name: &str, a: &TimedNetwork, b: &TimedNetwork) {
    assert_identical(name, "dff", &a.network, &b.network);
    assert_eq!(a.stages, b.stages, "{name}/dff: per-cell stage vector");
    assert_eq!(a.num_phases, b.num_phases, "{name}/dff: phase count");
    assert_eq!(a.output_stage, b.output_stage, "{name}/dff: output stage");
    for id in a.network.cell_ids() {
        assert_eq!(a.phase(id), b.phase(id), "{name}/dff: phase of {id:?}");
        assert_eq!(a.epoch(id), b.epoch(id), "{name}/dff: epoch of {id:?}");
    }
    assert_eq!(a.num_dffs(), b.num_dffs(), "{name}/dff: inserted DFF count");
    let lib = Library::default();
    assert_eq!(a.area(&lib), b.area(&lib), "{name}/dff: JJ area");
    assert_eq!(
        a.depth_cycles(),
        b.depth_cycles(),
        "{name}/dff: depth in cycles"
    );
}

#[test]
fn differential_table1_benchmarks_small() {
    for b in Benchmark::ALL {
        check_design(b.name(), &b.build_small());
    }
}

#[test]
fn differential_extended_benchmarks_small() {
    for b in ExtBenchmark::ALL {
        check_design(b.name(), &b.build_small());
    }
}

/// Paper-scale tier: minutes, not seconds — run by the CI `differential-slow`
/// job and by hand before shipping mapper/detector changes:
/// `cargo test --release --test differential_mapping -- --ignored`.
#[test]
#[ignore = "paper-scale differential sweep; run explicitly or in the slow CI job"]
fn differential_table1_benchmarks_paper_scale() {
    for b in Benchmark::ALL {
        check_design(b.name(), &b.build());
    }
}

/// Serializes the tests that install the process-global `force_workers`
/// override, so one test's forced count can never bleed into another's
/// measurement window. Lock poisoning is ignored — a panicking test already
/// failed; the next one still needs the lock.
fn worker_override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Parallel-path tier: forces four scoped workers (even on single-core
/// hosts, via `sfq_netlist::par::force_workers` — an atomic, not
/// `std::env::set_var`, which would race against concurrent `getenv` from
/// sibling test threads) and re-runs the full differential sweep, so the
/// level-parallel cut enumeration and the detect fan-outs are A/B-checked
/// against the sequential specifications whenever the harness is compiled
/// with `--features parallel` (the CI parallel-features job does exactly
/// that). Without the feature the override is inert and this repeats the
/// sequential sweep.
#[test]
fn differential_forced_parallel_workers() {
    let _guard = worker_override_lock();
    sfq_netlist::par::force_workers(4);
    for b in Benchmark::ALL {
        check_design(b.name(), &b.build_small());
    }
    sfq_netlist::par::force_workers(0);
}

/// Multi-restart descent tier: the restart merge must be bit-identical for
/// any worker count (the perturbation stream depends only on the restart
/// index, and the merge picks the smallest `(cost, index)`), restart count 1
/// must equal the plain single descent, and extra restarts must never make
/// the result worse. Exercised with the worker override held under
/// [`worker_override_lock`] so the sequential arm really runs the
/// sequential loop; with `--features parallel` (the CI parallel-features
/// job runs this with `SFQ_WORKERS=4`) the forced-4 arm exercises the
/// scoped fan-out, and without the feature the override is inert and both
/// arms pin the sequential loop.
#[test]
fn differential_multi_restart_determinism() {
    let _guard = worker_override_lock();
    let lib = Library::default();
    let cut_config = CutConfig::default();
    const RESTARTS: usize = 5;
    for b in [Benchmark::Adder, Benchmark::Square, Benchmark::Multiplier] {
        let name = b.name();
        let aig = b.build_small();
        let (mapped, _) = map_aig(&aig, &lib).cleaned();
        let subject = detect_t1(&mapped, &lib, &cut_config).network;

        let single = assign_phases(&subject, 4, PhaseEngine::Heuristic).expect("feasible");
        sfq_netlist::par::force_workers(1);
        let seq =
            assign_phases_with_restarts(&subject, 4, PhaseEngine::Heuristic, RESTARTS).unwrap();
        sfq_netlist::par::force_workers(4);
        let par =
            assign_phases_with_restarts(&subject, 4, PhaseEngine::Heuristic, RESTARTS).unwrap();
        let one = assign_phases_with_restarts(&subject, 4, PhaseEngine::Heuristic, 1).unwrap();
        sfq_netlist::par::force_workers(0);

        assert_eq!(seq, par, "{name}: restart merge depends on worker count");
        assert_eq!(one, single, "{name}: restarts=1 must be the plain descent");
        let d_single = insert_dffs(&subject, &single, 4).unwrap().num_dffs();
        let d_multi = insert_dffs(&subject, &par, 4).unwrap().num_dffs();
        assert!(
            d_multi <= d_single,
            "{name}: multi-restart made the result worse ({d_multi} > {d_single} DFFs)"
        );
    }
}

/// The `restarts = workers()` default must never produce a worse Table I
/// cost than `restarts = 1`: restart 0 is the unperturbed plain descent and
/// the merge keeps the smallest `(cost, index)`, so extra restarts can only
/// improve. Swept across forced worker counts (which *are* the default
/// restart counts) so the guarantee holds however many cores the host has.
#[test]
fn default_restarts_never_worse_than_single() {
    use sfq_core::{run_flow, FlowConfig};
    let _guard = worker_override_lock();
    for b in [Benchmark::Adder, Benchmark::Square, Benchmark::Multiplier] {
        let name = b.name();
        let aig = b.build_small();
        for workers in [1usize, 4, 8] {
            sfq_netlist::par::force_workers(workers);
            let default_cfg = FlowConfig::t1(4); // restarts = workers()
            assert_eq!(
                default_cfg.restarts,
                sfq_netlist::par::workers(),
                "{name}: the default restart count is the worker count"
            );
            let single_cfg = FlowConfig {
                restarts: 1,
                ..FlowConfig::t1(4)
            };
            let multi = run_flow(&aig, &default_cfg).expect("default flow");
            let single = run_flow(&aig, &single_cfg).expect("restarts=1 flow");
            sfq_netlist::par::force_workers(0);
            assert!(
                multi.report.num_dffs <= single.report.num_dffs,
                "{name}: default restarts worsened DFFs at {workers} workers \
                 ({} > {})",
                multi.report.num_dffs,
                single.report.num_dffs
            );
            assert!(
                multi.report.area <= single.report.area,
                "{name}: default restarts worsened area at {workers} workers \
                 ({} > {})",
                multi.report.area,
                single.report.area
            );
        }
    }
}

/// Degenerate corner: an AIG whose outputs include constants and repeated
/// literals exercises the mapper's constant materialization and shared-INV
/// paths in both implementations.
#[test]
fn differential_degenerate_outputs() {
    let mut aig = Aig::new("degenerate");
    let a = aig.input("a");
    let b = aig.input("b");
    let x = aig.xor(a, b);
    aig.output("zero", aig.const_false());
    aig.output("one", aig.const_true());
    aig.output("x", x);
    aig.output("x_again", x);
    aig.output("not_x", !x);
    aig.output("a_pass", a);
    aig.output("na", !a);
    check_design("degenerate", &aig);
}
