//! Interchange-format integration: AIGER and BLIF round-trips preserve
//! function; BLIF/Verilog/DOT/VCD exports stay well-formed on real flow
//! artifacts.

use sfq_t1::netlist::{aiger, export};
use sfq_t1::prelude::*;
use sfq_t1::sim::{vcd, PulseSim};

#[test]
fn aiger_round_trip_preserves_benchmark_functions() {
    for aig in [
        sfq_t1::circuits::adder(12),
        sfq_t1::circuits::c7552_sized(6),
        sfq_t1::circuits::multiplier(5),
    ] {
        let mut text = Vec::new();
        aiger::write_aag(&aig, &mut text).expect("write aag");
        let back = aiger::read_aag(text.as_slice(), aig.name()).expect("read aag");
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        let pats: Vec<u64> = (0..aig.num_inputs())
            .map(|i| 0x243F_6A88_85A3_08D3u64.rotate_left(i as u32 * 11))
            .collect();
        assert_eq!(aig.simulate(&pats), back.simulate(&pats), "{}", aig.name());
    }
}

#[test]
fn aiger_reader_rejects_malformed_files() {
    let cases: [&str; 4] = [
        "",                      // empty
        "aig 1 1 0 1 0\n2\n2\n", // binary header keyword
        "aag 1 1 1 1 0\n2\n2\n", // latches unsupported
        "aag x y z w v\n",       // unparsable counts
    ];
    for text in cases {
        assert!(
            aiger::read_aag(text.as_bytes(), "bad").is_err(),
            "accepted malformed file: {text:?}"
        );
    }
}

#[test]
fn blif_of_t1_flow_contains_subckts_and_balanced_model() {
    let aig = sfq_t1::circuits::adder(8);
    let flow = run_flow(&aig, &FlowConfig::t1(4)).expect("flow");
    let blif = export::render_blif(&flow.timed.network);
    assert!(blif.contains(".model adder8"));
    assert!(
        blif.contains(".subckt t1_cell"),
        "committed T1 cells appear as subckts"
    );
    assert!(
        blif.contains(".latch"),
        "path-balancing DFFs appear as latches"
    );
    assert!(blif.contains(".model t1_cell"), "companion model emitted");
    // Every .model has exactly one .end.
    assert_eq!(blif.matches(".model").count(), blif.matches(".end").count());
}

#[test]
fn blif_round_trip_preserves_mapped_benchmark_functions() {
    // Map (no retiming — the parser reads the combinational subset), render
    // BLIF, parse it back, and check functional equivalence against the AIG.
    for aig in [
        sfq_t1::circuits::adder(10),
        sfq_t1::circuits::c7552_sized(5),
        sfq_t1::circuits::square(5),
    ] {
        let net = sfq_t1::netlist::map_aig(&aig, &sfq_t1::netlist::Library::default());
        let text = export::render_blif(&net);
        let back = parse_blif(&text).expect("exported blif parses");
        let pats: Vec<u64> = (0..aig.num_inputs())
            .map(|i| 0xC90F_DAA2_2168_C234u64.rotate_left(i as u32 * 13))
            .collect();
        assert_eq!(aig.simulate(&pats), back.simulate(&pats), "{}", aig.name());
    }
}

#[test]
fn blif_parsed_benchmarks_run_the_full_t1_flow() {
    // External-netlist story end to end: BLIF in, T1 flow out, verified.
    let aig = sfq_t1::circuits::adder(8);
    let net = sfq_t1::netlist::map_aig(&aig, &sfq_t1::netlist::Library::default());
    let reread = parse_blif(&export::render_blif(&net)).expect("parse");
    let flow = run_flow(&reread, &FlowConfig::t1(4)).expect("flow on parsed blif");
    assert!(
        flow.report.t1_used > 0,
        "T1 cells commit on the re-imported adder"
    );
}

#[test]
fn verilog_of_t1_flow_is_structurally_complete() {
    let aig = sfq_t1::circuits::adder(8);
    let flow = run_flow(&aig, &FlowConfig::t1(4)).expect("flow");
    let net = &flow.timed.network;
    let v = export::render_verilog(net);
    assert!(v.contains("module SFQ_T1"), "T1 library module emitted");
    assert!(v.contains("module SFQ_DFF"), "DFF library module emitted");
    // One instance per non-input cell.
    let instances = v
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            t.starts_with("SFQ_") && t.contains('(')
        })
        .count();
    let cells = net
        .cell_ids()
        .filter(|&id| net.kind(id).is_clocked())
        .count();
    assert_eq!(instances, cells, "one instance per clocked cell");
    // One assign per primary output.
    let assigns = v
        .lines()
        .filter(|l| l.trim_start().starts_with("assign "))
        .count();
    assert!(assigns >= net.num_outputs(), "every output is driven");
}

#[test]
fn dot_of_t1_flow_is_structurally_complete() {
    let aig = sfq_t1::circuits::voter(9);
    let flow = run_flow(&aig, &FlowConfig::t1(4)).expect("flow");
    let net = &flow.timed.network;
    let dot = export::render_dot(net, Some(&flow.timed.stages));
    // One node line per cell and output, one edge line per fanin + output.
    let nodes = dot.lines().filter(|l| l.contains("[label=")).count();
    assert_eq!(nodes, net.num_cells() + net.num_outputs());
    let edges = dot.lines().filter(|l| l.contains("->")).count();
    let fanins: usize = net.cell_ids().map(|id| net.fanins(id).len()).sum();
    assert_eq!(edges, fanins + net.num_outputs());
}

#[test]
fn vcd_of_pipelined_run_is_loadable_shaped() {
    let aig = sfq_t1::circuits::adder(6);
    let flow = run_flow(&aig, &FlowConfig::t1(4)).expect("flow");
    let sim = PulseSim::new(&flow.timed);
    let waves: Vec<Vec<bool>> = (0..3)
        .map(|w| (0..aig.num_inputs()).map(|i| (i + w) % 2 == 0).collect())
        .collect();
    let (outs, trace) = sim.run_traced(&waves).expect("clean run");
    assert_eq!(outs.len(), 3);
    let dump = vcd::render_vcd(&flow.timed, &trace);
    assert!(dump.contains("$enddefinitions $end"));
    // Time stamps strictly increase.
    let mut last = -1i64;
    for line in dump.lines() {
        if let Some(t) = line.strip_prefix('#') {
            let t: i64 = t.parse().expect("numeric timestamp");
            assert!(t > last, "timestamps must increase: {t} after {last}");
            last = t;
        }
    }
    assert!(last > 0, "dump covers real time");
}

#[test]
fn exports_work_on_every_small_benchmark() {
    for bench in Benchmark::ALL {
        let aig = bench.build_small();
        let mut text = Vec::new();
        aiger::write_aag(&aig, &mut text).expect("write");
        let back = aiger::read_aag(text.as_slice(), bench.name()).expect("read");
        let pats: Vec<u64> = (0..aig.num_inputs())
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32 * 7))
            .collect();
        assert_eq!(
            aig.simulate(&pats),
            back.simulate(&pats),
            "{}",
            bench.name()
        );

        let net = sfq_t1::netlist::map_aig(&aig, &sfq_t1::netlist::Library::default());
        let blif = export::render_blif(&net);
        assert!(blif.contains(&format!(".model {}", export_safe(bench.name()))));
        let dot = export::render_dot(&net, None);
        assert!(dot.starts_with("digraph"));
    }
}

fn export_safe(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}
