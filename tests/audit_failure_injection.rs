//! Failure injection: corrupt verified flow artifacts and assert that the
//! structural audit and the pulse simulator both refuse them.
//!
//! The flow's safety story is defense in depth — `TimedNetwork::audit`
//! re-checks every timing rule from scratch, and the pulse simulator turns
//! any surviving violation into a `Hazard`. These tests prove the checkers
//! actually fire (a checker that never rejects anything would pass every
//! other test in the suite).

use sfq_t1::core::{TimedNetwork, TimingError};
use sfq_t1::netlist::{CellKind, GateKind, Network, Signal, T1Port};
use sfq_t1::prelude::*;
use sfq_t1::sim::Hazard;

/// A verified T1 flow on one full adder (the smallest T1-committing design).
fn t1_full_adder() -> TimedNetwork {
    let mut aig = sfq_t1::netlist::Aig::new("fa");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let (s, co) = aig.full_adder(a, b, c);
    aig.output("s", s);
    aig.output("co", co);
    let res = run_flow(&aig, &FlowConfig::t1(4)).expect("flow");
    assert!(res.report.t1_used >= 1, "FA commits a T1 cell");
    res.timed.audit().expect("flow artifacts audit cleanly");
    res.timed
}

/// The id and sorted fanin stages of the first T1 cell.
fn first_t1(timed: &TimedNetwork) -> (sfq_t1::netlist::CellId, Vec<(u32, u32)>) {
    let net = &timed.network;
    let t1 = net
        .cell_ids()
        .find(|&id| matches!(net.kind(id), CellKind::T1 { .. }))
        .expect("a T1 cell exists");
    let mut fanins: Vec<(u32, u32)> = net
        .fanins(t1)
        .iter()
        .map(|f| (f.cell.0, timed.stages[f.cell.0 as usize]))
        .collect();
    fanins.sort_by_key(|&(_, s)| s);
    (t1, fanins)
}

#[test]
fn audit_rejects_input_off_stage_zero() {
    let mut timed = t1_full_adder();
    let pi = timed.network.inputs()[0];
    timed.stages[pi.0 as usize] = 1;
    assert!(
        matches!(timed.audit(), Err(TimingError::InputNotAtZero { cell }) if cell == pi),
        "moved primary input must be rejected"
    );
}

#[test]
fn audit_rejects_non_causal_edges() {
    let mut timed = t1_full_adder();
    // Pull some clocked cell to stage 0: every fanin edge becomes ≥-stage.
    let victim = timed
        .network
        .cell_ids()
        .find(|&id| timed.network.kind(id).is_clocked() && timed.stages[id.0 as usize] > 0)
        .expect("a clocked cell");
    timed.stages[victim.0 as usize] = 0;
    match timed.audit() {
        Err(TimingError::NonCausalEdge { to, to_stage, .. }) => {
            assert_eq!(to, victim);
            assert_eq!(to_stage, 0);
        }
        other => panic!("expected NonCausalEdge, got {other:?}"),
    }
}

#[test]
fn audit_rejects_t1_arrival_collisions() {
    let mut timed = t1_full_adder();
    let (_, fanins) = first_t1(&timed);
    // Clone the middle arrival stage onto the latest fanin. The latest two
    // fanins are DFF-resynchronized (a primary input can serve at most the
    // earliest slot), so lowering one DFF keeps every edge span legal and
    // the *only* new violation is the eq. 5 distinctness rule.
    let (latest_cell, _) = fanins[2];
    let (_, second_stage) = fanins[1];
    timed.stages[latest_cell as usize] = second_stage;
    match timed.audit() {
        Err(TimingError::T1ArrivalCollision { stage, .. }) => {
            assert_eq!(stage, second_stage);
        }
        other => panic!("expected T1ArrivalCollision, got {other:?}"),
    }
}

#[test]
fn audit_rejects_t1_arrival_outside_window() {
    let mut timed = t1_full_adder();
    let (t1, fanins) = first_t1(&timed);
    // Delay the T1 cell itself until its earliest arrival (the stage-0
    // primary input of the FA) falls out of the `[σ−(n−1), σ−1]` window.
    // Fanin edges stay causal, so the window rule is the first to fire.
    let (_, earliest_stage) = fanins[0];
    timed.stages[t1.0 as usize] = earliest_stage + timed.num_phases as u32;
    match timed.audit() {
        Err(TimingError::T1ArrivalOutsideWindow {
            t1: cell,
            fanin_stage,
            ..
        }) => {
            assert_eq!(cell, t1);
            assert_eq!(fanin_stage, earliest_stage);
        }
        other => panic!("expected T1ArrivalOutsideWindow, got {other:?}"),
    }
}

#[test]
fn audit_rejects_misaligned_outputs() {
    let mut timed = t1_full_adder();
    timed.output_stage += 1;
    assert!(
        matches!(timed.audit(), Err(TimingError::OutputMisaligned { .. })),
        "all PO drivers now fire one stage early"
    );
}

#[test]
fn audit_rejects_pulse_lifetime_violations() {
    // Hand-build the minimal over-span netlist: PI → BUF(σ=1) → BUF(σ=7)
    // under n = 4 (span 6 > 4). No T1 involved, so the lifetime rule is the
    // only applicable one.
    let mut net = Network::new("overspan");
    let a = net.add_input("a");
    let u = net.add_gate(GateKind::Buf, &[a]);
    let v = net.add_gate(GateKind::Buf, &[u]);
    net.add_output("y", v);
    let timed = TimedNetwork {
        stages: vec![0, 1, 7],
        num_phases: 4,
        output_stage: 7,
        network: net,
    };
    match timed.audit() {
        Err(TimingError::LifetimeExceeded { span, phases, .. }) => {
            assert_eq!(span, 6);
            assert_eq!(phases, 4);
        }
        other => panic!("expected LifetimeExceeded, got {other:?}"),
    }
}

#[test]
fn simulator_flags_t1_input_collisions() {
    // Three PIs feeding a T1 directly all release at stage 0 — the exact
    // data hazard of the paper's §I-A. The audit rejects it; the simulator
    // must also catch it at runtime (defense in depth).
    let mut net = Network::new("collide");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let t1 = net.add_t1(0b00011, &[a, b, c]);
    net.add_output("s", Signal::t1(t1, T1Port::S));
    net.add_output("c", Signal::t1(t1, T1Port::C));
    let timed = TimedNetwork {
        stages: vec![0, 0, 0, 3],
        num_phases: 4,
        output_stage: 3,
        network: net,
    };
    assert!(
        timed.audit().is_err(),
        "the audit rejects colliding arrivals"
    );

    let err = simulate_waves(&timed, &[vec![true, true, false]])
        .expect_err("two same-tick T pulses collide");
    assert!(
        err.hazards()
            .iter()
            .any(|h| matches!(h, Hazard::T1Collision { .. })),
        "expected a T1Collision hazard, got {:?}",
        err.hazards()
    );
}

#[test]
fn simulator_flags_data_on_clock_ticks() {
    // One fanin arrives exactly at the T1's own firing stage.
    let mut net = Network::new("onclock");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let d1 = net.add_dff(a);
    let d2 = net.add_dff(b);
    let d3 = net.add_dff(c);
    let t1 = net.add_t1(0b00011, &[d1, d2, d3]);
    net.add_output("s", Signal::t1(t1, T1Port::S));
    net.add_output("c", Signal::t1(t1, T1Port::C));
    // d3 fires at stage 4 — the T1's own stage.
    let timed = TimedNetwork {
        stages: vec![0, 0, 0, 1, 2, 4, 4],
        num_phases: 4,
        output_stage: 4,
        network: net,
    };
    assert!(timed.audit().is_err());
    let err = simulate_waves(&timed, &[vec![false, false, true]])
        .expect_err("pulse lands on the clock tick");
    assert!(
        err.hazards()
            .iter()
            .any(|h| matches!(h, Hazard::T1DataOnClock { .. })),
        "expected T1DataOnClock, got {:?}",
        err.hazards()
    );
}

#[test]
fn simulator_flags_double_pulses_on_overspanned_edges() {
    // PI → BUF(σ=1) → BUF(σ=6) under n = 4: wave 1's pulse arrives before
    // the consumer ever fires, colliding with wave 0's buffered pulse.
    let mut net = Network::new("double");
    let a = net.add_input("a");
    let u = net.add_gate(GateKind::Buf, &[a]);
    let v = net.add_gate(GateKind::Buf, &[u]);
    net.add_output("y", v);
    let timed = TimedNetwork {
        stages: vec![0, 1, 6],
        num_phases: 4,
        output_stage: 6,
        network: net,
    };
    assert!(
        timed.audit().is_err(),
        "span 5 exceeds the 4-phase lifetime"
    );
    let err = simulate_waves(&timed, &[vec![true], vec![true]])
        .expect_err("second wave tramples the buffered pulse");
    assert!(
        err.hazards()
            .iter()
            .any(|h| matches!(h, Hazard::DoublePulse { .. })),
        "expected DoublePulse, got {:?}",
        err.hazards()
    );
}

#[test]
fn clean_networks_pass_both_checkers() {
    // Sanity guard for this file's methodology: the uncorrupted artifact
    // passes audit and simulates hazard-free on exhaustive FA inputs.
    let timed = t1_full_adder();
    timed.audit().expect("clean audit");
    let waves: Vec<Vec<bool>> = (0..8u8)
        .map(|p| (0..3).map(|k| p >> k & 1 == 1).collect())
        .collect();
    let outs = simulate_waves(&timed, &waves).expect("hazard-free");
    for (p, out) in outs.iter().enumerate() {
        let ones = (p as u8).count_ones();
        assert_eq!(out[0], ones & 1 == 1, "sum bit for pattern {p}");
        assert_eq!(out[1], ones >= 2, "carry bit for pattern {p}");
    }
}
