//! Pulse-level validation of retimed netlists: the simulator executes the
//! timed network wave by wave (gate-level pipelining means a new input
//! vector can enter every period) and must agree with Boolean simulation of
//! the original AIG on every wave.

use sfq_t1::prelude::*;

/// Deterministic pseudo-random wave source.
fn waves(num_inputs: usize, num_waves: usize, mut seed: u64) -> Vec<Vec<bool>> {
    let mut next = move || {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..num_waves)
        .map(|_| (0..num_inputs).map(|_| next() >> 33 & 1 == 1).collect())
        .collect()
}

/// Boolean-simulates one input vector through the AIG.
fn aig_eval(aig: &sfq_t1::netlist::Aig, ins: &[bool]) -> Vec<bool> {
    let patterns: Vec<u64> = ins.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
    aig.simulate(&patterns)
        .iter()
        .map(|&w| w & 1 == 1)
        .collect()
}

fn check_pipelined(aig: &sfq_t1::netlist::Aig, config: &FlowConfig, num_waves: usize) {
    let result = run_flow(aig, config).expect("flow succeeds");
    let input_waves = waves(aig.num_inputs(), num_waves, 0xABCD_EF01);
    let outs = simulate_waves(&result.timed, &input_waves).expect("no hazards");
    assert_eq!(outs.len(), num_waves, "one output wave per input wave");
    for (w, (ins, got)) in input_waves.iter().zip(&outs).enumerate() {
        let want = aig_eval(aig, ins);
        assert_eq!(got, &want, "wave {w} disagrees with Boolean simulation");
    }
}

#[test]
fn adder_pipelines_through_all_flows() {
    let aig = sfq_t1::circuits::adder(12);
    for config in [
        FlowConfig::single_phase(),
        FlowConfig::multiphase(4),
        FlowConfig::t1(4),
    ] {
        check_pipelined(&aig, &config, 8);
    }
}

#[test]
fn multiplier_pipelines_through_t1_flow() {
    let aig = sfq_t1::circuits::multiplier(5);
    check_pipelined(&aig, &FlowConfig::t1(4), 6);
}

#[test]
fn voter_pipelines_through_t1_flow() {
    let aig = sfq_t1::circuits::voter(15);
    check_pipelined(&aig, &FlowConfig::t1(4), 6);
}

#[test]
fn c7552_mix_pipelines_through_all_flows() {
    let aig = sfq_t1::circuits::c7552_sized(6);
    for config in [
        FlowConfig::single_phase(),
        FlowConfig::multiphase(4),
        FlowConfig::t1(4),
    ] {
        check_pipelined(&aig, &config, 5);
    }
}

#[test]
fn eight_phase_t1_flow_simulates_correctly() {
    // More phases than the paper uses: the window is wider, schedules are
    // sparser — the simulator must still agree.
    let aig = sfq_t1::circuits::adder(10);
    let mut config = FlowConfig::t1(8);
    config.equivalence_words = 2;
    check_pipelined(&aig, &config, 6);
}

#[test]
fn back_to_back_waves_shift_registers_cleanly() {
    // A degenerate single-path design: every wave must come out exactly
    // depth cycles later, in order.
    let mut aig = sfq_t1::netlist::Aig::new("chain");
    let a = aig.input("a");
    let b = aig.input("b");
    let mut x = aig.xor(a, b);
    for _ in 0..6 {
        x = aig.xor(x, b);
    }
    aig.output("y", x);
    check_pipelined(&aig, &FlowConfig::multiphase(4), 12);
}
