//! Pulse-level validation of retimed netlists: the simulator executes the
//! timed network wave by wave (gate-level pipelining means a new input
//! vector can enter every period) and must agree with Boolean simulation of
//! the original AIG on every wave.

use proptest::prelude::*;
use sfq_t1::prelude::*;

/// Deterministic pseudo-random wave source.
fn waves(num_inputs: usize, num_waves: usize, mut seed: u64) -> Vec<Vec<bool>> {
    let mut next = move || {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..num_waves)
        .map(|_| (0..num_inputs).map(|_| next() >> 33 & 1 == 1).collect())
        .collect()
}

/// Boolean-simulates one input vector through the AIG.
fn aig_eval(aig: &sfq_t1::netlist::Aig, ins: &[bool]) -> Vec<bool> {
    let patterns: Vec<u64> = ins.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
    aig.simulate(&patterns)
        .iter()
        .map(|&w| w & 1 == 1)
        .collect()
}

fn check_pipelined(aig: &sfq_t1::netlist::Aig, config: &FlowConfig, num_waves: usize) {
    let result = run_flow(aig, config).expect("flow succeeds");
    let input_waves = waves(aig.num_inputs(), num_waves, 0xABCD_EF01);
    let outs = simulate_waves(&result.timed, &input_waves).expect("no hazards");
    assert_eq!(outs.len(), num_waves, "one output wave per input wave");
    for (w, (ins, got)) in input_waves.iter().zip(&outs).enumerate() {
        let want = aig_eval(aig, ins);
        assert_eq!(got, &want, "wave {w} disagrees with Boolean simulation");
    }
}

#[test]
fn adder_pipelines_through_all_flows() {
    let aig = sfq_t1::circuits::adder(12);
    for config in [
        FlowConfig::single_phase(),
        FlowConfig::multiphase(4),
        FlowConfig::t1(4),
    ] {
        check_pipelined(&aig, &config, 8);
    }
}

#[test]
fn multiplier_pipelines_through_t1_flow() {
    let aig = sfq_t1::circuits::multiplier(5);
    check_pipelined(&aig, &FlowConfig::t1(4), 6);
}

#[test]
fn voter_pipelines_through_t1_flow() {
    let aig = sfq_t1::circuits::voter(15);
    check_pipelined(&aig, &FlowConfig::t1(4), 6);
}

#[test]
fn c7552_mix_pipelines_through_all_flows() {
    let aig = sfq_t1::circuits::c7552_sized(6);
    for config in [
        FlowConfig::single_phase(),
        FlowConfig::multiphase(4),
        FlowConfig::t1(4),
    ] {
        check_pipelined(&aig, &config, 5);
    }
}

#[test]
fn eight_phase_t1_flow_simulates_correctly() {
    // More phases than the paper uses: the window is wider, schedules are
    // sparser — the simulator must still agree.
    let aig = sfq_t1::circuits::adder(10);
    let mut config = FlowConfig::t1(8);
    config.equivalence_words = 2;
    check_pipelined(&aig, &config, 6);
}

// ------------------------------------------------------ property tier ----
//
// Random AIGs through the full flow, checked with the equivalence harness
// (sfq_sim::equiv): the pulse simulation of the timed artifact must match
// the original AIG over the deterministic vector sweep, exhaustive for the
// input counts generated here. Input shrinking comes from the harness
// itself — a mismatch is reported as a minimal stimulus.

/// A recipe for one random AIG node; indices select among existing literals
/// modulo the pool size, so every recipe is valid by construction.
fn build_random_aig(num_inputs: usize, ops: &[(u8, usize, usize, usize)]) -> sfq_t1::netlist::Aig {
    let mut aig = sfq_t1::netlist::Aig::new("random_pulse");
    let mut pool: Vec<AigLit> = (0..num_inputs)
        .map(|i| aig.input(format!("i{i}")))
        .collect();
    for &(sel, a, b, c) in ops {
        let lit = |idx: usize, pool: &[AigLit]| pool[idx % pool.len()];
        let new = match sel % 4 {
            0 => {
                let (x, y) = (lit(a, &pool), lit(b, &pool));
                aig.and(x, !y)
            }
            1 => {
                let (x, y) = (lit(a, &pool), lit(b, &pool));
                aig.xor(x, y)
            }
            2 => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                aig.maj(x, y, z)
            }
            _ => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                let (s, co) = aig.full_adder(x, y, z);
                pool.push(s);
                co
            }
        };
        pool.push(new);
    }
    for k in 0..2 {
        let lit = pool[pool.len() - 1 - (k % pool.len().min(6))];
        aig.output(format!("o{k}"), lit);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_aigs_stay_pulse_equivalent_through_every_flow(
        num_inputs in 2usize..7,
        ops in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>(), any::<usize>()),
            1..40,
        ),
    ) {
        let aig = build_random_aig(num_inputs, &ops);
        for config in [FlowConfig::multiphase(4), FlowConfig::t1(4)] {
            let res = run_flow(&aig, &config).expect("flow succeeds");
            // ≤ 6 inputs ⇒ the harness sweeps every input vector and
            // pipelines them back to back.
            let report = check_against_aig(&aig, &res.timed, &EquivConfig::default())
                .expect("pulse simulation matches the original AIG");
            prop_assert_eq!(report.waves, 1usize << aig.num_inputs());
        }
    }
}

/// Paper-scale sweep: the full-size generators from Table 1 through every
/// flow, with a deepened sampled-vector harness (corners, walking ones, and
/// 512 random waves per design). Run by the `differential-slow` CI job via
/// `-- --ignored`.
#[test]
#[ignore = "paper-scale; run with --ignored in the differential-slow CI job"]
fn paper_scale_circuits_are_pulse_equivalent() {
    let designs: Vec<(&str, sfq_t1::netlist::Aig)> = vec![
        ("adder64", sfq_t1::circuits::adder(64)),
        ("multiplier12", sfq_t1::circuits::multiplier(12)),
        ("voter63", sfq_t1::circuits::voter(63)),
        ("c7552", sfq_t1::circuits::c7552_sized(48)),
    ];
    let config = EquivConfig {
        random_waves: 512,
        ..EquivConfig::default()
    };
    for (name, aig) in designs {
        for flow in [FlowConfig::multiphase(4), FlowConfig::t1(4)] {
            let res = run_flow(&aig, &flow).expect("flow succeeds");
            let report = check_against_aig(&aig, &res.timed, &config)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.waves >= 512, "{name} swept {} waves", report.waves);
        }
    }
}

#[test]
fn back_to_back_waves_shift_registers_cleanly() {
    // A degenerate single-path design: every wave must come out exactly
    // depth cycles later, in order.
    let mut aig = sfq_t1::netlist::Aig::new("chain");
    let a = aig.input("a");
    let b = aig.input("b");
    let mut x = aig.xor(a, b);
    for _ in 0..6 {
        x = aig.xor(x, b);
    }
    aig.output("y", x);
    check_pipelined(&aig, &FlowConfig::multiphase(4), 12);
}
