//! Golden pulse-level artifacts: the timed Verilog emission and the VCD /
//! CSV trace renderers must be byte-deterministic and must reproduce the
//! committed goldens under `tests/golden/`. Any intentional change to the
//! emitters is re-blessed by running the ignored `bless_pulse_goldens`
//! test and inspecting the diff.

use sfq_t1::prelude::*;
use sfq_t1::sim::vcd::render_vcd;
use sfq_t1::sim::{trace_waveform, PulseTrace};

/// The fixed scenario every golden in this file is derived from: a 4-bit
/// ripple-carry adder through the paper's T1 flow, pulsed with eight
/// deterministic waves.
fn golden_scenario() -> (sfq_t1::core::FlowResult, Vec<Vec<bool>>) {
    let aig = sfq_t1::circuits::adder(4);
    let res = run_flow(&aig, &FlowConfig::t1(4)).expect("flow succeeds");
    let num_inputs = res.timed.network.num_inputs();
    let mut seed = 0x5EED_CAFE_0123_4567u64;
    let mut next = move || {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let waves = (0..8)
        .map(|_| (0..num_inputs).map(|_| next() >> 33 & 1 == 1).collect())
        .collect();
    (res, waves)
}

fn traced(res: &sfq_t1::core::FlowResult, waves: &[Vec<bool>]) -> PulseTrace {
    let sim = PulseSim::new(&res.timed);
    let (_, trace) = sim.run_traced(waves).expect("no hazards");
    trace
}

#[test]
fn timed_verilog_matches_the_committed_golden() {
    let (res, _) = golden_scenario();
    let verilog = write_verilog_timed(&res.timed);
    let golden = include_str!("golden/adder4_t1.v");
    assert_eq!(
        verilog, golden,
        "timed Verilog drifted from tests/golden/adder4_t1.v; \
         re-bless with `cargo test --test pulse_artifacts -- --ignored` \
         if the change is intended"
    );
}

#[test]
fn vcd_dump_matches_the_committed_golden_and_is_deterministic() {
    let (res, waves) = golden_scenario();
    let first = render_vcd(&res.timed, &traced(&res, &waves));
    let second = render_vcd(&res.timed, &traced(&res, &waves));
    assert_eq!(first, second, "VCD rendering must be byte-deterministic");
    let golden = include_str!("golden/adder4_t1.vcd");
    assert_eq!(
        first, golden,
        "VCD dump drifted from tests/golden/adder4_t1.vcd; \
         re-bless with `cargo test --test pulse_artifacts -- --ignored` \
         if the change is intended"
    );
}

#[test]
fn waveform_csv_matches_the_committed_golden_and_is_deterministic() {
    let (res, waves) = golden_scenario();
    let trace = traced(&res, &waves);
    let first = trace_waveform(&res.timed, &trace).render_csv();
    let second = trace_waveform(&res.timed, &trace).render_csv();
    assert_eq!(first, second, "CSV rendering must be byte-deterministic");
    let golden = include_str!("golden/adder4_t1.csv");
    assert_eq!(
        first, golden,
        "waveform CSV drifted from tests/golden/adder4_t1.csv; \
         re-bless with `cargo test --test pulse_artifacts -- --ignored` \
         if the change is intended"
    );
}

/// The goldens above all sample the *same* flow result, so the artifacts
/// must agree with each other: every input pin that pulsed at least once
/// shows up both in the Verilog module header and in the VCD variable
/// declarations. (Outputs are sampled from their driving cells in the VCD,
/// and silent pins are deliberately omitted, so only active inputs carry
/// their port name into both artifacts.)
#[test]
fn verilog_and_vcd_name_the_same_interface_pins() {
    let (res, waves) = golden_scenario();
    let verilog = write_verilog_timed(&res.timed);
    let vcd = render_vcd(&res.timed, &traced(&res, &waves));
    let net = &res.timed.network;
    let mut checked = 0;
    for i in 0..net.num_inputs() {
        let pin = net.input_name(i);
        assert!(verilog.contains(pin), "Verilog must declare pin {pin}");
        if waves.iter().any(|w| w[i]) {
            assert!(vcd.contains(pin), "VCD must declare active pin {pin}");
            checked += 1;
        }
    }
    assert!(checked >= 4, "the stimulus must exercise most inputs");
}

/// Regenerates every golden this file checks. Ignored: run deliberately
/// with `cargo test --test pulse_artifacts -- --ignored bless`, then
/// review the diff before committing.
#[test]
#[ignore = "bless tool, not a test; regenerates tests/golden/adder4_t1.*"]
fn bless_pulse_goldens() {
    let (res, waves) = golden_scenario();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let trace = traced(&res, &waves);
    std::fs::write(dir.join("adder4_t1.v"), write_verilog_timed(&res.timed)).unwrap();
    std::fs::write(dir.join("adder4_t1.vcd"), render_vcd(&res.timed, &trace)).unwrap();
    std::fs::write(
        dir.join("adder4_t1.csv"),
        trace_waveform(&res.timed, &trace).render_csv(),
    )
    .unwrap();
}
