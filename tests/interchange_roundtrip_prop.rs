//! Property-based round-trip harness for the interchange frontends.
//!
//! Random AIGs go out and back through both formats:
//!
//! * `write_aag → read_aag` — structural counts, input/output/design names
//!   (symbol table + comment section) and functions survive, and a second
//!   write is **byte-identical** (the canonical-form fixpoint);
//! * `write_blif → parse_blif` — same, via the Aig-level BLIF writer;
//! * mapped `Network → render_blif → parse_blif` — primary-output truth
//!   tables match the source AIG.

use proptest::prelude::*;
use sfq_t1::netlist::aiger::{read_aag, write_aag};
use sfq_t1::netlist::blif::write_blif;
use sfq_t1::netlist::{export, map_aig, AigLit, Library};
use sfq_t1::prelude::*;

/// A recipe for one random AIG node (indices resolve modulo the pool).
#[derive(Debug, Clone)]
enum Op {
    And(usize, usize, bool, bool),
    Xor(usize, usize),
    Maj(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ca, cb)| Op::And(a, b, ca, cb)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(a, b, c)| Op::Maj(a, b, c)),
    ]
}

fn build_aig(num_inputs: usize, ops: &[Op], num_outputs: usize, negate_mask: u64) -> Aig {
    let mut aig = Aig::new("prop rt"); // space: exercises BLIF sanitization
    let mut pool: Vec<AigLit> = (0..num_inputs)
        .map(|i| aig.input(format!("in[{i}]")))
        .collect();
    for op in ops {
        let lit = |idx: usize, pool: &[AigLit]| pool[idx % pool.len()];
        let new = match *op {
            Op::And(a, b, ca, cb) => {
                let (mut x, mut y) = (lit(a, &pool), lit(b, &pool));
                if ca {
                    x = !x;
                }
                if cb {
                    y = !y;
                }
                aig.and(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (lit(a, &pool), lit(b, &pool));
                aig.xor(x, y)
            }
            Op::Maj(a, b, c) => {
                let (x, y, z) = (lit(a, &pool), lit(b, &pool), lit(c, &pool));
                aig.maj(x, y, z)
            }
        };
        pool.push(new);
    }
    for k in 0..num_outputs {
        let mut lit = pool[pool.len() - 1 - (k % pool.len().min(6))];
        if negate_mask >> k & 1 == 1 {
            lit = !lit;
        }
        aig.output(format!("out[{k}]"), lit);
    }
    aig
}

fn random_patterns(inputs: usize, salt: u64) -> Vec<u64> {
    (0..inputs)
        .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left((i as u32) * 7) ^ salt)
        .collect()
}

fn assert_interface_preserved(a: &Aig, b: &Aig) {
    assert_eq!(b.name(), a.name(), "design name");
    assert_eq!(b.num_inputs(), a.num_inputs());
    assert_eq!(b.num_outputs(), a.num_outputs());
    for k in 0..a.num_outputs() {
        assert_eq!(b.output_name(k), a.output_name(k), "output {k} name");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// AIGER: names + structure + function survive; the second write is
    /// byte-identical to the first.
    #[test]
    fn prop_aag_round_trip_is_a_byte_fixpoint(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        num_inputs in 1usize..8,
        num_outputs in 1usize..6,
        negate_mask in any::<u64>(),
    ) {
        let aig = build_aig(num_inputs, &ops, num_outputs, negate_mask);
        let mut w1 = Vec::new();
        write_aag(&aig, &mut w1).expect("write to memory");
        let back = read_aag(w1.as_slice(), "fallback").expect("written aag parses");
        assert_interface_preserved(&aig, &back);
        for k in 0..aig.num_inputs() {
            prop_assert_eq!(back.input_name(k), aig.input_name(k), "input {} name", k);
        }
        let pats = random_patterns(aig.num_inputs(), 0xA5A5);
        prop_assert_eq!(aig.simulate(&pats), back.simulate(&pats));
        let mut w2 = Vec::new();
        write_aag(&back, &mut w2).expect("write to memory");
        prop_assert_eq!(w1, w2, "write→read→write must be byte-identical");
    }

    /// BLIF (AIG level): sanitized names + function survive; the second
    /// write is byte-identical to the first.
    #[test]
    fn prop_blif_round_trip_is_a_byte_fixpoint(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        num_inputs in 1usize..8,
        num_outputs in 1usize..6,
        negate_mask in any::<u64>(),
    ) {
        let aig = build_aig(num_inputs, &ops, num_outputs, negate_mask);
        let w1 = write_blif(&aig);
        let back = parse_blif(&w1).expect("written blif parses");
        prop_assert_eq!(back.name(), "prop_rt", "model name is sanitized");
        prop_assert_eq!(back.num_inputs(), aig.num_inputs());
        prop_assert_eq!(back.num_outputs(), aig.num_outputs());
        for k in 0..aig.num_inputs() {
            prop_assert_eq!(back.input_name(k), aig.input_name(k), "input {} name", k);
        }
        for k in 0..aig.num_outputs() {
            prop_assert_eq!(back.output_name(k), aig.output_name(k), "output {} name", k);
        }
        let pats = random_patterns(aig.num_inputs(), 0x5A5A);
        prop_assert_eq!(aig.simulate(&pats), back.simulate(&pats));
        prop_assert_eq!(write_blif(&back), w1, "write→read→write must be byte-identical");
    }

    /// Mapped networks: `render_blif → parse_blif` preserves every primary
    /// output's truth table.
    #[test]
    fn prop_mapped_blif_preserves_po_truth_tables(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        num_inputs in 1usize..7,
        num_outputs in 1usize..5,
    ) {
        let aig = build_aig(num_inputs, &ops, num_outputs, 0);
        let net = map_aig(&aig, &Library::default());
        let text = export::render_blif(&net);
        let back = parse_blif(&text).expect("exported blif parses");
        prop_assert_eq!(back.num_inputs(), aig.num_inputs());
        prop_assert_eq!(back.num_outputs(), aig.num_outputs());
        // ≤ 6 inputs: 64 patterns cover the full truth table exhaustively.
        let pats: Vec<u64> = (0..aig.num_inputs())
            .map(|i| {
                let mut w = 0u64;
                for row in 0..64u64 {
                    w |= (row >> i & 1) << row;
                }
                w
            })
            .collect();
        prop_assert_eq!(aig.simulate(&pats), back.simulate(&pats));
    }
}
