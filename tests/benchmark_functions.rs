//! Functional verification of every benchmark generator against plain
//! software arithmetic, via bit-parallel AIG simulation (64 test vectors per
//! simulated word).
//!
//! These are the tests that justify the DESIGN.md §5 substitution: the
//! circuits we synthesize really compute the arithmetic functions the
//! EPFL/ISCAS benchmarks compute.

use sfq_t1::circuits::{self, reference};
use sfq_t1::netlist::Aig;

/// Simple deterministic xorshift* stream for pattern words.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Drives an AIG whose inputs are words named by prefix with 64 random
/// vectors; returns per-vector input words and per-vector output words.
fn simulate_words(aig: &Aig, widths: &[usize], seed: u64) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    assert_eq!(
        widths.iter().sum::<usize>(),
        aig.num_inputs(),
        "width layout"
    );
    let mut rng = Rng(seed);
    let patterns: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.next()).collect();
    let outs = aig.simulate(&patterns);

    let decode = |bits: &[u64], vector: usize| -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &w)| acc | ((w >> vector) & 1) << i)
    };

    let mut in_words = Vec::with_capacity(64);
    let mut out_bits = Vec::with_capacity(64);
    for v in 0..64 {
        let mut offset = 0;
        let mut row = Vec::new();
        for &w in widths {
            row.push(decode(&patterns[offset..offset + w], v));
            offset += w;
        }
        in_words.push(row);
        // Output word boundaries are the caller's business; hand out the
        // flat per-vector bit list.
        out_bits.push(outs.iter().map(|&w| (w >> v) & 1).collect::<Vec<u64>>());
    }
    (in_words, out_bits)
}

fn word_of(bits: &[u64]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | b << i)
}

#[test]
fn adder_matches_software_addition() {
    let bits = 16;
    let aig = circuits::adder(bits);
    let (ins, outs) = simulate_words(&aig, &[bits, bits], 1);
    for (iw, ob) in ins.iter().zip(&outs) {
        let expect = iw[0] + iw[1];
        assert_eq!(word_of(ob), expect, "a={} b={}", iw[0], iw[1]);
    }
}

#[test]
fn adder128_headline_instance_is_well_formed() {
    let aig = circuits::adder(128);
    assert_eq!(aig.num_inputs(), 256);
    assert_eq!(aig.num_outputs(), 129);
    // One FA per bit; XOR3+MAJ3 cost 7 AIG nodes with sharing, minus
    // constant folding at the carry-in.
    assert!(aig.num_ands() > 500, "ripple chain was folded away?");
}

#[test]
fn multiplier_matches_software_product() {
    let bits = 8;
    let aig = circuits::multiplier(bits);
    let (ins, outs) = simulate_words(&aig, &[bits, bits], 2);
    for (iw, ob) in ins.iter().zip(&outs) {
        let expect = iw[0] * iw[1];
        assert_eq!(word_of(ob), expect, "a={} b={}", iw[0], iw[1]);
    }
}

#[test]
fn c6288_is_a_16x16_multiplier() {
    let aig = circuits::c6288();
    assert_eq!(aig.num_inputs(), 32);
    assert_eq!(aig.num_outputs(), 32);
    let (ins, outs) = simulate_words(&aig, &[16, 16], 3);
    for (iw, ob) in ins.iter().zip(&outs) {
        assert_eq!(word_of(ob), iw[0] * iw[1]);
    }
}

#[test]
fn square_matches_software_square() {
    let bits = 10;
    let aig = circuits::square(bits);
    let (ins, outs) = simulate_words(&aig, &[bits], 4);
    for (iw, ob) in ins.iter().zip(&outs) {
        assert_eq!(word_of(ob), iw[0] * iw[0], "a={}", iw[0]);
    }
}

#[test]
fn voter_matches_majority_count() {
    let n = 31;
    let aig = circuits::voter(n);
    let (ins, outs) = simulate_words(&aig, &[n], 5);
    for (iw, ob) in ins.iter().zip(&outs) {
        let ones = iw[0].count_ones() as usize;
        let expect = u64::from(2 * ones > n);
        assert_eq!(ob[0], expect, "ballots={:b}", iw[0]);
    }
}

#[test]
fn sin_cordic_matches_reference_model() {
    let (bits, iters) = (10, 6);
    let aig = circuits::sin_cordic(bits, iters);
    let (ins, outs) = simulate_words(&aig, &[bits], 6);
    for (iw, ob) in ins.iter().zip(&outs) {
        let theta = iw[0] & ((1 << (bits - 1)) - 1); // domain [0, π/2)
                                                     // Re-simulate this single masked angle through the circuit.
        let patterns: Vec<u64> = (0..bits)
            .map(|i| if theta >> i & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        let raw = aig.simulate(&patterns);
        let sin_bits: Vec<u64> = raw[..bits].iter().map(|&w| w & 1).collect();
        let cos_bits: Vec<u64> = raw[bits..].iter().map(|&w| w & 1).collect();
        let (sin_ref, cos_ref) = reference::sin_cordic_ref(theta, bits, iters);
        assert_eq!(word_of(&sin_bits), sin_ref, "sin(theta={theta})");
        assert_eq!(word_of(&cos_bits), cos_ref, "cos(theta={theta})");
        let _ = ob;
    }
}

#[test]
fn sin_cordic_is_numerically_a_sine() {
    // Beyond bit-exactness vs the model: the model itself must approximate
    // sin(πx) to the fixed-point tolerance.
    let (bits, iters) = (12, 10);
    let scale = (1u64 << (bits - 2)) as f64;
    for k in 1..16u64 {
        let theta = k << (bits - 5); // sample [0, π/2)
        let (s, _) = reference::sin_cordic_ref(theta, bits, iters);
        let angle = theta as f64 / (1u64 << bits) as f64 * std::f64::consts::PI;
        let measured = s as f64 / scale;
        assert!(
            (measured - angle.sin()).abs() < 0.02,
            "sin({angle:.3}) = {measured:.3} vs {:.3}",
            angle.sin()
        );
    }
}

#[test]
fn log2_matches_reference_model() {
    let bits = 8;
    let aig = circuits::log2_shift_add(bits);
    let frac_bits = (bits / 2).max(4);
    for x in 1..(1u64 << bits) {
        let patterns: Vec<u64> = (0..bits)
            .map(|i| if x >> i & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        let raw = aig.simulate(&patterns);
        let int_w = aig.num_outputs() - frac_bits;
        let int_bits: Vec<u64> = raw[..int_w].iter().map(|&w| w & 1).collect();
        let frac_out: Vec<u64> = raw[int_w..].iter().map(|&w| w & 1).collect();
        let (pos_ref, frac_ref) = reference::log2_ref(x, bits);
        assert_eq!(word_of(&int_bits), pos_ref, "leading one of {x}");
        assert_eq!(word_of(&frac_out), frac_ref, "fraction of {x}");
    }
}

#[test]
fn log2_is_numerically_a_logarithm() {
    let bits = 16;
    let frac_bits = (bits / 2).max(4);
    for x in [3u64, 7, 100, 255, 1000, 40_000, 65_535] {
        let (pos, frac) = reference::log2_ref(x, bits);
        let measured = pos as f64 + frac as f64 / (1u64 << frac_bits) as f64;
        let exact = (x as f64).log2();
        assert!(
            (measured - exact).abs() < 0.01,
            "log2({x}) = {measured:.4} vs {exact:.4}"
        );
    }
}

#[test]
fn c7552_mix_matches_add_compare_parity() {
    let bits = 10;
    let aig = circuits::c7552_sized(bits);
    let (ins, outs) = simulate_words(&aig, &[bits, bits, 1], 7);
    for (iw, ob) in ins.iter().zip(&outs) {
        let (a, b, cin) = (iw[0], iw[1], iw[2]);
        let sum_bits = &ob[..bits + 1];
        assert_eq!(word_of(sum_bits), a + b + cin, "sum");
        assert_eq!(ob[bits + 1], u64::from(a > b), "comparator");
        assert_eq!(ob[bits + 2], u64::from(a.count_ones() % 2 == 1), "parity a");
        assert_eq!(ob[bits + 3], u64::from(b.count_ones() % 2 == 1), "parity b");
    }
}

#[test]
fn paper_scale_instances_have_table1_order_of_magnitude() {
    // The paper's networks are 10³–10⁵ gates; our stand-ins must be in the
    // same regime for the Table I comparison to be meaningful.
    use sfq_t1::prelude::Benchmark;
    for bench in Benchmark::ALL {
        let aig = bench.build();
        let nodes = aig.num_ands();
        assert!(
            (500..2_000_000).contains(&nodes),
            "{}: {} nodes out of expected regime",
            bench.name(),
            nodes
        );
    }
}
