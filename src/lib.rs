//! # sfq-t1 — T1-aware multiphase technology mapping for SFQ arithmetic
//!
//! A from-scratch Rust reproduction of *"Unleashing the Power of T1-cells in
//! SFQ Arithmetic Circuits"* (Bairamkulov, Yu, De Micheli — DAC 2024,
//! [arXiv:2403.05901](https://arxiv.org/abs/2403.05901)).
//!
//! Rapid single-flux-quantum (RSFQ) logic communicates with picosecond
//! pulses; almost every gate is clocked, so every reconvergent path must be
//! balanced with D flip-flops (DFFs), which dominate layout area. The paper
//! attacks this with two combined ideas:
//!
//! 1. **T1 flip-flops** — a pulse-counter cell that computes `XOR3`, `MAJ3`
//!    and `OR3` (plus complements) of three inputs *simultaneously*, turning
//!    a full adder into 29 JJs instead of ~73 — *if* its three input pulses
//!    can be kept temporally separated;
//! 2. **multiphase clocking** — `n` interleaved clock phases per period give
//!    exactly the fine-grained arrival-time control that requirement needs.
//!
//! This workspace rebuilds the full stack the paper sits on: truth tables and
//! Boolean matching ([`tt`]), logic networks / cuts / mapping ([`netlist`]),
//! MILP + CP-SAT solvers ([`solver`]), the three-stage T1 flow itself
//! ([`core`]), a pulse-level simulator with energy and jitter-margin
//! analyses ([`sim`]), the benchmark circuits ([`circuits`]), the experiment
//! harness (`sfq-bench`), and the `sfqt1` command-line tool (`sfq-cli`) for
//! driving the flow on external AIGER/BLIF netlists.
//!
//! ## Quickstart
//!
//! ```
//! use sfq_t1::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a 16-bit ripple-carry adder and run the paper's three flows.
//! let aig = sfq_t1::circuits::adder(16);
//! for config in [FlowConfig::single_phase(), FlowConfig::multiphase(4), FlowConfig::t1(4)] {
//!     let result = run_flow(&aig, &config)?;
//!     println!(
//!         "{:>2}-phase t1={} area={} JJ, dffs={}, depth={} cycles",
//!         config.phases, config.use_t1, result.report.area,
//!         result.report.num_dffs, result.report.depth_cycles,
//!     );
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! regeneration of every table and figure in the paper.

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub use sfq_circuits as circuits;
pub use sfq_core as core;
pub use sfq_netlist as netlist;
pub use sfq_sim as sim;
pub use sfq_solver as solver;
pub use sfq_tt as tt;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use sfq_circuits::Benchmark;
    pub use sfq_core::report::StageReport;
    pub use sfq_core::{run_flow, run_flow_on_network, FlowConfig, FlowReport, FlowResult};
    pub use sfq_netlist::{map_aig, parse_blif, Aig, AigLit, Library, Network};
    pub use sfq_sim::energy::{measure_energy, EnergyModel};
    pub use sfq_sim::margin::{analyze_margins, MarginConfig};
    pub use sfq_sim::{
        check_against_aig, check_timed, simulate_waves, write_verilog_timed, EquivConfig, PulseSim,
        T1Cell, T1Input,
    };
    pub use sfq_tt::TruthTable;
}
