//! The paper's headline result: the 128-bit adder.
//!
//! Table I reports that T1-aware mapping shrinks the EPFL `adder` (128-bit)
//! by 25 % in area versus the 4-phase baseline, with nearly the whole
//! circuit absorbed into T1 cells (127 found, 127 used — one per full adder
//! along the ripple chain). This example reruns that experiment and prints
//! the same ratios.
//!
//! ```text
//! cargo run --release --example adder128
//! ```
//! Pass a different width as the first argument to scale the experiment
//! (e.g. `cargo run --release --example adder128 -- 32`).

use sfq_t1::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(128);

    let aig = sfq_t1::circuits::adder(bits);
    println!(
        "design: {} ({} inputs, {} outputs, {} AIG nodes)\n",
        aig.name(),
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands()
    );

    let one_phase = run_flow(&aig, &FlowConfig::single_phase())?.report;
    let four_phase = run_flow(&aig, &FlowConfig::multiphase(4))?.report;
    let t1 = run_flow(&aig, &FlowConfig::t1(4))?.report;

    println!(
        "{:<10} {:>6} {:>6} {:>8} {:>10} {:>8}",
        "flow", "found", "used", "#DFF", "area (JJ)", "depth"
    );
    for (label, r, found) in [
        ("1-phase", &one_phase, None),
        ("4-phase", &four_phase, None),
        ("4φ + T1", &t1, Some(t1.t1_found)),
    ] {
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>10} {:>8}",
            label,
            found.map_or(String::from("-"), |f| f.to_string()),
            if r.t1_used > 0 {
                r.t1_used.to_string()
            } else {
                String::from("-")
            },
            r.num_dffs,
            r.area,
            r.depth_cycles
        );
    }

    let ratio = |x: u64, y: u64| x as f64 / y as f64;
    println!(
        "\nDFF ratio  T1 vs 1φ: {:.2}   T1 vs 4φ: {:.2}",
        ratio(t1.num_dffs as u64, one_phase.num_dffs as u64),
        ratio(t1.num_dffs as u64, four_phase.num_dffs as u64)
    );
    println!(
        "area ratio T1 vs 1φ: {:.2}   T1 vs 4φ: {:.2}   (paper: 0.20 / 0.75)",
        ratio(t1.area, one_phase.area),
        ratio(t1.area, four_phase.area)
    );
    println!(
        "depth      1φ: {}   4φ: {}   T1: {} cycles",
        one_phase.depth_cycles, four_phase.depth_cycles, t1.depth_cycles
    );

    // The paper's structural claim: one T1 cell per full adder.
    assert!(
        t1.t1_used >= bits - 1,
        "the ripple chain should be nearly fully absorbed into T1 cells"
    );
    Ok(())
}
