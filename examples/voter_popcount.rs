//! Majority voting through a full-adder popcount tree (EPFL `voter`).
//!
//! The `voter` benchmark decides an n-way majority by compressing the input
//! column with carry-save full adders and comparing the population count
//! against n/2 — a structure that is almost entirely XOR3/MAJ3 pairs, which
//! is why Table I shows every one of its T1 candidates committed (252/252).
//!
//! This example runs a scaled voter, compares the three flows, and then
//! validates the winner against a plain software majority on random ballots
//! using the pulse-level simulator — i.e. the *timed* netlist with all its
//! DFFs and phase assignments, not just the Boolean network.
//!
//! ```text
//! cargo run --release --example voter_popcount [voters]
//! ```

use sfq_t1::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(63);
    let aig = sfq_t1::circuits::voter(n);
    println!("design: {} ({} AIG nodes)\n", aig.name(), aig.num_ands());

    let four_phase = run_flow(&aig, &FlowConfig::multiphase(4))?;
    let t1 = run_flow(&aig, &FlowConfig::t1(4))?;

    let (r4, rt) = (&four_phase.report, &t1.report);
    println!("T1 cells found/used: {}/{}", rt.t1_found, rt.t1_used);
    println!(
        "4φ baseline: {:>8} JJ, {:>6} DFFs, depth {}",
        r4.area, r4.num_dffs, r4.depth_cycles
    );
    println!(
        "T1 flow:     {:>8} JJ, {:>6} DFFs, depth {}   (area ratio {:.2})",
        rt.area,
        rt.num_dffs,
        rt.depth_cycles,
        rt.area as f64 / r4.area as f64
    );

    // Pulse-accurate validation on random ballots.
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let mut next_bit = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1
    };
    let ballots: Vec<Vec<bool>> = (0..16)
        .map(|_| (0..n).map(|_| next_bit()).collect())
        .collect();
    let outs = simulate_waves(&t1.timed, &ballots)?;
    for (ballot, out) in ballots.iter().zip(&outs) {
        let ones = ballot.iter().filter(|&&b| b).count();
        let expected = ones > n / 2;
        assert_eq!(out[0], expected, "majority of {ones}/{n} ones");
    }
    println!("\n16 random ballots: pulse-level majority matches software count");
    Ok(())
}
