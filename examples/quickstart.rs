//! Quickstart: run the paper's three flows (1φ, 4φ, 4φ+T1) on a small
//! ripple-carry adder and print a miniature Table I row.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sfq_t1::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-bit ripple-carry adder: the FA-dominated structure the T1 cell
    // was made for (the paper's headline benchmark is the 128-bit version;
    // see `examples/adder128.rs`).
    let aig = sfq_t1::circuits::adder(16);
    println!("design: {} ({} AIG nodes)\n", aig.name(), aig.num_ands());

    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>10} {:>8}",
        "flow", "T1", "gates", "#DFF", "area (JJ)", "depth"
    );

    let flows: [(&str, FlowConfig); 3] = [
        ("1-phase", FlowConfig::single_phase()),
        ("4-phase", FlowConfig::multiphase(4)),
        ("4φ + T1", FlowConfig::t1(4)),
    ];

    let mut reports = Vec::new();
    for (label, config) in flows {
        let result = run_flow(&aig, &config)?;
        let r = &result.report;
        println!(
            "{:<10} {:>6} {:>8} {:>8} {:>10} {:>8}",
            label, r.t1_used, r.num_gates, r.num_dffs, r.area, r.depth_cycles
        );

        // Every flow result is already audited and equivalence-checked, but
        // demonstrate the pulse-level simulator on real input waves too.
        let waves = vec![vec![true; aig.num_inputs()], vec![false; aig.num_inputs()]];
        let outs = simulate_waves(&result.timed, &waves)?;
        assert_eq!(outs.len(), 2, "one output wave per input wave");
        reports.push(result.report);
    }

    let base = reports[1].area as f64; // 4φ baseline, as in the paper
    let t1 = reports[2].area as f64;
    println!(
        "\nT1 flow area vs 4φ baseline: {:.2}× ({}% saved)",
        t1 / base,
        ((1.0 - t1 / base) * 100.0).round()
    );

    // Where does the area go? The decomposition behind the paper's
    // motivation: path balancing dominates the single-phase design.
    let lib = sfq_t1::netlist::Library::default();
    println!("\narea breakdown (JJ):");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10}",
        "flow", "gates", "T1", "DFFs", "splitters"
    );
    for (label, config) in [
        ("1-phase", FlowConfig::single_phase()),
        ("4-phase", FlowConfig::multiphase(4)),
        ("4φ + T1", FlowConfig::t1(4)),
    ] {
        let result = run_flow(&aig, &config)?;
        let b = result.timed.network.area_breakdown(&lib);
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>10}",
            label, b.gates, b.t1_cells, b.dffs, b.splitters
        );
    }
    Ok(())
}
