//! The paper's Fig. 1: the T1 flip-flop as a full adder.
//!
//! * Fig. 1a/1b — drive the behavioural T1 cell with the paper's pulse
//!   sequence and render the waveform;
//! * Fig. 1c — run the T1 flow on a single full adder and show that the
//!   whole adder collapses into one T1 cell whose three fanins are released
//!   at three distinct phases.
//!
//! ```text
//! cargo run --release --example t1_full_adder
//! ```

use sfq_t1::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Fig. 1b: the pulse-counter behaviour --------------------------
    println!("== Fig. 1b: T1 cell waveform (patterns a; a,b; a,b,c) ==\n");
    let wf = sfq_t1::sim::waveform::fig1b_waveform();
    println!("{}", wf.render_ascii());

    // ---- Fig. 1c: a full adder becomes one T1 cell ---------------------
    println!("== Fig. 1c: full adder through the T1 flow ==\n");
    let mut aig = Aig::new("full_adder");
    let a = aig.input("a");
    let b = aig.input("b");
    let cin = aig.input("cin");
    let (s, cout) = aig.full_adder(a, b, cin);
    aig.output("s", s);
    aig.output("cout", cout);

    let result = run_flow(&aig, &FlowConfig::t1(4))?;
    let report = &result.report;
    println!(
        "T1 cells used: {}   area: {} JJ   path-balancing DFFs: {}",
        report.t1_used, report.area, report.num_dffs
    );
    assert_eq!(report.t1_used, 1, "the FA maps to exactly one T1 cell");

    // The three fanins must arrive at pairwise-distinct stages — that is
    // the φ0/φ1/φ2 schedule drawn in Fig. 1c.
    let net = &result.timed.network;
    for id in net.cell_ids() {
        if net.kind(id).is_t1() {
            let mut stages: Vec<u32> = net
                .fanins(id)
                .iter()
                .map(|f| result.timed.stage(f.cell))
                .collect();
            stages.sort_unstable();
            println!(
                "T1 cell fires at stage {}; fanins arrive at stages {:?}",
                result.timed.stage(id),
                stages
            );
        }
    }

    // Exhaustive functional check through the pulse-level simulator.
    println!("\n a b c | s cout");
    for row in 0..8u32 {
        let ins = vec![row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1];
        let outs = simulate_waves(&result.timed, std::slice::from_ref(&ins))?;
        let (s, c) = (outs[0][0], outs[0][1]);
        println!(
            " {} {} {} | {} {}",
            u8::from(ins[0]),
            u8::from(ins[1]),
            u8::from(ins[2]),
            u8::from(s),
            u8::from(c)
        );
        let want = u32::from(ins[0]) + u32::from(ins[1]) + u32::from(ins[2]);
        assert_eq!(u32::from(s) + 2 * u32::from(c), want, "adder arithmetic");
    }
    println!("\nall 8 rows match a+b+cin — the retimed T1 netlist is a full adder");
    Ok(())
}
