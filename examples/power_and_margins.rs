//! Beyond Table I: what do the T1 flow's JJ savings mean physically?
//!
//! This example runs the 4φ baseline and the T1 flow on a 32-bit adder and
//! answers two questions the paper's discrete model leaves open:
//!
//! 1. **Power** — conventional RSFQ dissipates static bias power per JJ, so
//!    the area win is a power win; the pulse simulator additionally counts
//!    switching energy per operation under random traffic.
//! 2. **Analog margin** — the multiphase discipline separates T1 input
//!    pulses by `period / n`; Monte-Carlo jitter sampling shows how much
//!    1σ timing noise the synthesized netlist tolerates before the T1
//!    pulse-counting discipline breaks.
//!
//! Run with: `cargo run --release --example power_and_margins`

use sfq_t1::prelude::*;

fn random_waves(inputs: usize, count: usize) -> Vec<Vec<bool>> {
    let mut state = 0xFEE1_600D_F00D_5EEDu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|_| (0..inputs).map(|_| next() & 1 == 1).collect())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aig = sfq_t1::circuits::adder(32);
    let lib = Library::default();
    let model = EnergyModel::default();
    let waves = random_waves(aig.num_inputs(), 64);

    println!("32-bit ripple adder, 64 random operand waves\n");
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "flow", "area JJ", "DFFs", "P_static µW", "E/op aJ", "P_total µW"
    );
    let mut flows = Vec::new();
    for (name, config) in [
        ("4φ", FlowConfig::multiphase(4)),
        ("4φ+T1", FlowConfig::t1(4)),
    ] {
        let res = run_flow(&aig, &config)?;
        let (_, trace) = PulseSim::new(&res.timed).run_traced(&waves)?;
        let e = measure_energy(&res.timed, &trace, waves.len(), &lib, &model);
        println!(
            "{:<10} {:>9} {:>10} {:>12.1} {:>12.0} {:>12.1}",
            name,
            res.report.area,
            res.report.num_dffs,
            e.static_power_uw,
            e.energy_per_wave_aj,
            e.total_power_uw
        );
        flows.push((name, res));
    }

    // How is the clock load spread over the four phases?
    let (_, t1_flow) = &flows[1];
    println!("\nT1 flow clock-load profile:");
    println!("{}", StageReport::summarize(&t1_flow.timed));

    // And how much jitter can the T1 cells take at 40 GHz?
    println!("jitter tolerance of the T1 separation discipline (40 GHz clock):");
    println!(
        "{:>10} {:>12} {:>16}",
        "jitter ps", "hazard rate", "worst sep ps"
    );
    for jitter in [0.25, 0.5, 1.0, 2.0] {
        let cfg = MarginConfig {
            jitter_ps: jitter,
            trials: 2000,
            ..MarginConfig::default()
        };
        let r = analyze_margins(&t1_flow.timed, &cfg);
        println!(
            "{:>10.2} {:>12.4} {:>16.2}",
            jitter,
            r.hazard_rate(),
            r.worst_separation_ps
        );
    }
    println!("\n(stage spacing at 4 phases / 25 ps period: 6.25 ps — ~1 ps-class");
    println!("jitter is the knee; see `margin_mc` for the full phase-count sweep)");
    Ok(())
}
