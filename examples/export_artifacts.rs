//! Interoperability tour: run the T1 flow on a small multiplier, then write
//! every interchange artifact the library supports —
//!
//! * `out/<name>.aag`  — the input AIG in ASCII AIGER,
//! * `out/<name>.blif` — the retimed netlist as BLIF (T1 cells as subckts),
//! * `out/<name>.dot`  — Graphviz with stage (σ) annotations,
//! * `out/<name>.vcd`  — a pulse trace for GTKWave.
//!
//! ```text
//! cargo run --release --example export_artifacts
//! ```

use sfq_t1::netlist::{aiger, export};
use sfq_t1::prelude::*;
use sfq_t1::sim::{vcd, PulseSim};
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aig = sfq_t1::circuits::multiplier(4);
    let result = run_flow(&aig, &FlowConfig::t1(4))?;
    let name = aig.name().to_string();

    let out = Path::new("out");
    fs::create_dir_all(out)?;

    // AIGER of the input network.
    let mut aag = Vec::new();
    aiger::write_aag(&aig, &mut aag)?;
    fs::write(out.join(format!("{name}.aag")), &aag)?;

    // BLIF + DOT of the retimed netlist.
    fs::write(
        out.join(format!("{name}.blif")),
        export::render_blif(&result.timed.network),
    )?;
    fs::write(
        out.join(format!("{name}.dot")),
        export::render_dot(&result.timed.network, Some(&result.timed.stages)),
    )?;

    // VCD of an actual pulse-level run.
    let sim = PulseSim::new(&result.timed);
    let waves = vec![
        vec![true, false, true, false, false, true, true, false], // 5 × 6
        vec![true, true, true, true, true, true, true, true],     // 15 × 15
    ];
    let (outs, trace) = sim.run_traced(&waves)?;
    fs::write(
        out.join(format!("{name}.vcd")),
        vcd::render_vcd(&result.timed, &trace),
    )?;

    println!("wrote out/{name}.aag, .blif, .dot, .vcd");
    println!(
        "flow: {} T1 cells, {} DFFs, {} JJ, depth {} cycles",
        result.report.t1_used,
        result.report.num_dffs,
        result.report.area,
        result.report.depth_cycles
    );
    let decode = |bits: &[bool]| -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    };
    println!("wave 0: 5 × 6 = {}", decode(&outs[0]));
    println!("wave 1: 15 × 15 = {}", decode(&outs[1]));
    assert_eq!(decode(&outs[0]), 30);
    assert_eq!(decode(&outs[1]), 225);
    Ok(())
}
